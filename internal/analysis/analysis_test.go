package analysis

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workload"
)

// scripted builds a SliceSource from hand-written uops.
func scripted(uops []isa.Uop) trace.Source {
	for i := range uops {
		uops[i].Seq = uint64(i)
	}
	return trace.NewSliceSource(uops)
}

func alu(op isa.ALUOp, dst uint8, srcs []uint8, srcVals []uint32, dstVal uint32) isa.Uop {
	u := isa.Uop{Class: isa.ClassALU, Op: op, DstReg: dst, DstVal: dstVal, NSrc: uint8(len(srcs))}
	u.SrcReg[0], u.SrcReg[1], u.SrcReg[2] = isa.RegNone, isa.RegNone, isa.RegNone
	for i, s := range srcs {
		u.SrcReg[i] = s
		u.SrcVal[i] = srcVals[i]
	}
	if op != isa.OpMov && op != isa.OpLea {
		u.WritesFlags = true
	}
	return u
}

func TestNarrowDependencyScripted(t *testing.T) {
	// r1 ← narrow; r2 ← wide; then consume each once.
	uops := []isa.Uop{
		alu(isa.OpMov, 1, nil, nil, 5),          // narrow producer
		alu(isa.OpMov, 2, nil, nil, 0x12345678), // wide producer
		alu(isa.OpAdd, 3, []uint8{1}, []uint32{5}, 6),
		alu(isa.OpAdd, 4, []uint8{2}, []uint32{0x12345678}, 0x12345679),
	}
	d := MeasureNarrowDependency(scripted(uops), len(uops))
	if d.Operands != 2 {
		t.Fatalf("operands = %d, want 2", d.Operands)
	}
	if d.NarrowDep != 1 {
		t.Fatalf("narrow dep = %d, want 1", d.NarrowDep)
	}
	if d.Frac != 0.5 {
		t.Fatalf("frac = %f", d.Frac)
	}
}

func TestOperandMixScripted(t *testing.T) {
	uops := []isa.Uop{
		// two narrow sources, narrow result
		alu(isa.OpAdd, 3, []uint8{1, 2}, []uint32{3, 4}, 7),
		// two narrow sources, wide result
		alu(isa.OpShl, 3, []uint8{1}, []uint32{0x70}, 0x1C000),
		// one narrow source (narrow + wide)
		alu(isa.OpAdd, 3, []uint8{1, 2}, []uint32{3, 0x10000}, 0x10003),
	}
	// make the shl two-source-shaped by adding an imm
	uops[1].HasImm = true
	uops[1].Imm = 9
	d := MeasureNarrowDependency(scripted(uops), len(uops))
	if d.TwoNarrowNarrowResFrac <= 0 || d.TwoNarrowWideResFrac <= 0 || d.OneNarrowFrac <= 0 {
		t.Fatalf("operand mix fractions: %+v", d)
	}
	sum := d.TwoNarrowNarrowResFrac + d.TwoNarrowWideResFrac + d.OneNarrowFrac
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("scripted mix should cover all three cases: %f", sum)
	}
}

func TestCarryScripted(t *testing.T) {
	contained := isa.Uop{
		Class: isa.ClassLoad, Op: isa.OpLea, NSrc: 2,
		DstReg:  1,
		MemAddr: 0xFFFC4A02 + 0x1C,
	}
	contained.SrcReg[0], contained.SrcReg[1], contained.SrcReg[2] = 0, 12, isa.RegNone
	contained.SrcVal[0], contained.SrcVal[1] = 0xFFFC4A02, 0x1C

	propagated := contained
	propagated.SrcVal[0] = 0xFFFC40F0
	propagated.SrcVal[1] = 0x20
	propagated.MemAddr = 0xFFFC40F0 + 0x20

	arith := alu(isa.OpAdd, 3, []uint8{1, 2}, []uint32{0x10002, 4}, 0x10006)

	c := MeasureCarry(scripted([]isa.Uop{contained, propagated, arith}), 3)
	if c.LoadEligible != 2 || c.LoadContained != 1 {
		t.Fatalf("load carry: %+v", c)
	}
	if c.ArithEligible != 1 || c.ArithContained != 1 {
		t.Fatalf("arith carry: %+v", c)
	}
	if c.LoadFrac() != 0.5 || c.ArithFrac() != 1.0 {
		t.Fatalf("fracs: %f %f", c.LoadFrac(), c.ArithFrac())
	}
}

func TestCarryEmpty(t *testing.T) {
	var c CarryStudy
	if c.ArithFrac() != 0 || c.LoadFrac() != 0 {
		t.Error("empty study fractions must be 0")
	}
}

func TestDistanceScripted(t *testing.T) {
	uops := []isa.Uop{
		alu(isa.OpMov, 1, nil, nil, 5),                // seq 0: producer
		alu(isa.OpMov, 2, nil, nil, 7),                // seq 1
		alu(isa.OpAdd, 3, []uint8{1}, []uint32{5}, 6), // seq 2: consumes r1, dist 2
		alu(isa.OpAdd, 4, []uint8{2}, []uint32{7}, 8), // seq 3: consumes r2, dist 2
		alu(isa.OpAdd, 5, []uint8{1}, []uint32{5}, 6), // seq 4: r1 already consumed
	}
	d := MeasureDistance(scripted(uops), len(uops))
	if d.Pairs != 2 {
		t.Fatalf("pairs = %d, want 2 (first consumer only)", d.Pairs)
	}
	if d.Average() != 2.0 {
		t.Fatalf("avg = %f, want 2", d.Average())
	}
	if d.Max != 2 || d.Histo[2] != 2 {
		t.Fatalf("histogram wrong: max=%d histo=%v", d.Max, d.Histo[:4])
	}
}

func TestDistanceEmpty(t *testing.T) {
	var d DistanceStudy
	if d.Average() != 0 {
		t.Error("empty distance average must be 0")
	}
}

// TestSpecShapes: the three studies over real SPEC profiles land in the
// paper's reported bands.
func TestSpecShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("statistics run")
	}
	const n = 50000
	var sumDep, sumDist float64
	profiles := workload.SpecInt2000()
	for _, p := range profiles {
		s := p.MustStream()
		d := MeasureNarrowDependency(s, n)
		sumDep += d.Frac

		s2 := p.MustStream()
		dist := MeasureDistance(s2, n)
		sumDist += dist.Average()
		if dist.Average() < 1 || dist.Average() > 15 {
			t.Errorf("%s: producer-consumer distance %.1f outside plausible band", p.Name, dist.Average())
		}

		s3 := p.MustStream()
		c := MeasureCarry(s3, n)
		if c.LoadEligible == 0 {
			t.Errorf("%s: no CR-eligible loads", p.Name)
		}
	}
	avgDep := sumDep / float64(len(profiles))
	if avgDep < 0.5 || avgDep > 0.85 {
		t.Errorf("average narrow dependency %.2f, want paper-shaped ~0.65", avgDep)
	}
	avgDist := sumDist / float64(len(profiles))
	// Figure 13 reports ~2-6 uops on IA-32.
	if avgDist < 1.5 || avgDist > 8 {
		t.Errorf("average producer-consumer distance %.1f, want the paper's 2-6 band", avgDist)
	}
}
