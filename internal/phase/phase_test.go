package phase

import "testing"

// fill records a synthetic interval footprint: branches at the given PCs
// and loads at the given pages, weighted evenly.
func fill(d *Detector, pcs []uint64, pages []uint64, n int) {
	for i := 0; i < n; i++ {
		for _, pc := range pcs {
			d.NoteBranch(pc)
		}
		for _, pg := range pages {
			d.NoteMem(pg << 12)
		}
	}
}

func TestStablePhaseKeepsOneID(t *testing.T) {
	d := New()
	for i := 0; i < 10; i++ {
		fill(d, []uint64{0x1000, 0x1040, 0x2000}, []uint64{1, 2, 3}, 50)
		if got := d.Advance(); got != 0 {
			t.Fatalf("interval %d classified as phase %d, want 0", i, got)
		}
	}
	if d.Phases() != 1 {
		t.Errorf("stable behaviour grew %d phases, want 1", d.Phases())
	}
}

func TestDistinctBehavioursGetDistinctIDs(t *testing.T) {
	d := New()
	fill(d, []uint64{0x1000, 0x1040}, []uint64{1, 2}, 50)
	a := d.Advance()
	fill(d, []uint64{0x9000, 0x9abc, 0x8888}, []uint64{700, 701}, 50)
	b := d.Advance()
	if a == b {
		t.Fatalf("disjoint footprints classified as one phase (%d)", a)
	}
	// The first behaviour recurs: it must map back to its original ID.
	fill(d, []uint64{0x1000, 0x1040}, []uint64{1, 2}, 50)
	if got := d.Advance(); got != a {
		t.Errorf("recurring behaviour classified as %d, want %d", got, a)
	}
}

func TestEmptyIntervalKeepsLastPhase(t *testing.T) {
	d := New()
	fill(d, []uint64{0x5000}, []uint64{9}, 20)
	want := d.Advance()
	if got := d.Advance(); got != want {
		t.Errorf("empty interval reclassified %d -> %d", want, got)
	}
	if d.Phases() != 1 {
		t.Errorf("empty interval must not create phases, got %d", d.Phases())
	}
}

func TestPhaseTableIsBounded(t *testing.T) {
	d := NewWith(4, 0.1)
	for i := 0; i < 40; i++ {
		// Every interval touches a different footprint.
		fill(d, []uint64{uint64(i) * 0x77770, uint64(i)*0x13131 + 7}, []uint64{uint64(i * 3)}, 30)
		id := d.Advance()
		if id < 0 || id >= 4 {
			t.Fatalf("phase ID %d escaped the table bound", id)
		}
	}
	if d.Phases() > 4 {
		t.Errorf("table grew to %d phases, bound is 4", d.Phases())
	}
}

func TestDriftTracksInsteadOfFragmenting(t *testing.T) {
	d := New()
	// A footprint whose page set shifts slowly: each interval shares five
	// of its six pages with the previous one, so adjacent signatures stay
	// well inside the match threshold and the EWMA tracks the drift.
	for i := 0; i < 12; i++ {
		var pages []uint64
		for p := 0; p < 6; p++ {
			pages = append(pages, uint64(i+p))
		}
		fill(d, []uint64{0x4000, 0x4100}, pages, 40)
		d.Advance()
	}
	if d.Phases() > 6 {
		t.Errorf("slow drift fragmented into %d phases", d.Phases())
	}
}
