// Package phase detects program phases from lightweight per-interval
// signatures, in the spirit of basic-block-vector phase classification:
// the branch PCs and memory pages touched during a feedback interval are
// hashed into a small histogram, the histogram is normalized into a
// signature, and signatures are matched against a bounded table of known
// phases by Manhattan distance. Recurring program behaviour maps back to
// the same phase ID, which lets adaptive steering policies keep per-phase
// statistics instead of comparing adjacent — possibly unrelated —
// intervals.
package phase

// Buckets is the signature histogram width. Two halves: branch-PC
// footprint in the lower half, memory-page working set in the upper half.
// Small enough that classification is a handful of cache lines per
// interval, wide enough that distinct loops land in distinct buckets.
const Buckets = 32

const half = Buckets / 2

// DefaultMaxPhases bounds the phase table: signatures beyond it collapse
// onto their nearest known phase rather than growing the table forever.
const DefaultMaxPhases = 16

// DefaultThreshold is the Manhattan-distance match threshold between
// normalized signatures (each sums to ≤ 2: one per histogram half). Two
// intervals executing the same loop nest typically differ by well under
// 0.3; unrelated code regions differ by over 1.
const DefaultThreshold = 0.5

// signature is a normalized interval histogram plus bookkeeping.
type signature struct {
	vec  [Buckets]float64
	hits uint64 // intervals matched to this phase
}

// Detector accumulates one interval's footprint and classifies it into a
// phase ID at each interval boundary. The zero Detector is not ready; use
// New. Not safe for concurrent use — each simulation owns one.
type Detector struct {
	cur      [Buckets]uint32
	branches uint32
	pages    uint32

	table     []signature
	maxPhases int
	threshold float64
	last      int
}

// New returns a detector with the default table bound and threshold.
func New() *Detector {
	return &Detector{
		maxPhases: DefaultMaxPhases,
		threshold: DefaultThreshold,
		table:     make([]signature, 0, DefaultMaxPhases),
	}
}

// Reset discards the interval footprint and every learned phase, keeping
// the table storage and tuning (a reused detector classifies exactly like
// a fresh one).
func (d *Detector) Reset() {
	d.cur = [Buckets]uint32{}
	d.branches, d.pages = 0, 0
	d.table = d.table[:0]
	d.last = 0
}

// NewWith returns a detector with an explicit phase-table bound and
// match threshold (tests and sensitivity studies).
func NewWith(maxPhases int, threshold float64) *Detector {
	if maxPhases < 1 {
		maxPhases = 1
	}
	return &Detector{maxPhases: maxPhases, threshold: threshold}
}

// hash spreads a key over one histogram half (Fibonacci hashing; the
// multiplier is the 64-bit golden ratio).
func hash(key uint64) int {
	return int((key*0x9E3779B97F4A7C15)>>60) & (half - 1)
}

// NoteBranch records one branch (or jump) PC into the interval footprint.
func (d *Detector) NoteBranch(pc uint64) {
	d.cur[hash(pc)]++
	d.branches++
}

// NoteMem records one memory access into the interval footprint at page
// granularity (the working-set component of the signature).
func (d *Detector) NoteMem(addr uint64) {
	d.cur[half+hash(addr>>12)]++
	d.pages++
}

// Phases returns the number of distinct phases observed so far.
func (d *Detector) Phases() int { return len(d.table) }

// Last returns the most recently classified phase ID.
func (d *Detector) Last() int { return d.last }

// Advance classifies the footprint accumulated since the previous call
// and resets it, returning the phase ID of the elapsed interval. An
// interval with no recorded events keeps the previous phase (an empty
// signature carries no evidence of change). Phase IDs are small ints
// starting at 0, stable for the detector's lifetime.
func (d *Detector) Advance() int {
	if d.branches == 0 && d.pages == 0 {
		return d.last
	}
	var sig [Buckets]float64
	if d.branches > 0 {
		inv := 1 / float64(d.branches)
		for i := 0; i < half; i++ {
			sig[i] = float64(d.cur[i]) * inv
		}
	}
	if d.pages > 0 {
		inv := 1 / float64(d.pages)
		for i := half; i < Buckets; i++ {
			sig[i] = float64(d.cur[i]) * inv
		}
	}
	d.cur = [Buckets]uint32{}
	d.branches, d.pages = 0, 0

	best, bestDist := -1, d.threshold
	for i := range d.table {
		if dist := manhattan(&sig, &d.table[i].vec); dist < bestDist {
			best, bestDist = i, dist
		}
	}
	if best < 0 {
		if len(d.table) < d.maxPhases {
			d.table = append(d.table, signature{vec: sig, hits: 1})
			d.last = len(d.table) - 1
			return d.last
		}
		// Table full: collapse onto the nearest known phase regardless of
		// the threshold, so IDs stay bounded.
		best = nearest(d.table, &sig)
	}
	s := &d.table[best]
	s.hits++
	// EWMA the stored signature toward the new observation so a slowly
	// drifting phase tracks instead of fragmenting.
	for i := range s.vec {
		s.vec[i] = 0.75*s.vec[i] + 0.25*sig[i]
	}
	d.last = best
	return best
}

// manhattan returns the L1 distance between two signatures.
func manhattan(a, b *[Buckets]float64) float64 {
	var d float64
	for i := range a {
		if diff := a[i] - b[i]; diff >= 0 {
			d += diff
		} else {
			d -= diff
		}
	}
	return d
}

// nearest returns the index of the table signature closest to sig.
func nearest(table []signature, sig *[Buckets]float64) int {
	best, bestDist := 0, manhattan(sig, &table[0].vec)
	for i := 1; i < len(table); i++ {
		if dist := manhattan(sig, &table[i].vec); dist < bestDist {
			best, bestDist = i, dist
		}
	}
	return best
}
