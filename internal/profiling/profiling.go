// Package profiling wires the standard pprof file outputs into the
// command-line tools, so a slow study can be profiled exactly as it is
// normally invoked (helpersim -cpuprofile=cpu.pprof ...) instead of
// reconstructing it as a Go benchmark first.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling according to the two standard flag values: a
// CPU profile streams to cpuPath until the returned stop function runs,
// and memPath receives an allocation-inclusive heap profile snapshot at
// stop time (after a final GC, so live-heap numbers are not inflated by
// collectable garbage). Either path may be empty to disable that
// profile; stop is always safe to call exactly once.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				return fmt.Errorf("profiling: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
