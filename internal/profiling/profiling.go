// Package profiling wires the standard pprof file outputs into the
// command-line tools, so a slow study can be profiled exactly as it is
// normally invoked (helpersim -cpuprofile=cpu.pprof ...) instead of
// reconstructing it as a Go benchmark first.
package profiling

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	runtimepprof "runtime/pprof"
)

// Start begins profiling according to the two standard flag values: a
// CPU profile streams to cpuPath until the returned stop function runs,
// and memPath receives an allocation-inclusive heap profile snapshot at
// stop time (after a final GC, so live-heap numbers are not inflated by
// collectable garbage). Either path may be empty to disable that
// profile; stop is always safe to call exactly once.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := runtimepprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			runtimepprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC()
			if err := runtimepprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				return fmt.Errorf("profiling: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}

// DebugHandler is the live-profiling surface behind `helperd -debug-addr`:
// the standard net/http/pprof endpoints on their usual /debug/pprof/
// paths, on a mux of their own so they never leak onto the grid's
// public listener.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug binds DebugHandler on addr and serves it from a background
// goroutine, returning the bound address (useful with ":0") and a stop
// function. A live server or worker started with -debug-addr can then
// be profiled in place: go tool pprof http://<addr>/debug/pprof/profile.
func ServeDebug(addr string) (bound string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("profiling: debug listener: %w", err)
	}
	srv := &http.Server{Handler: DebugHandler()}
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close() }, nil
}
