package queue

import (
	"testing"
	"testing/quick"
)

func TestRingBasics(t *testing.T) {
	r := NewRing[int](4)
	if !r.Empty() || r.Full() || r.Cap() != 4 {
		t.Fatal("fresh ring state wrong")
	}
	p0 := r.Push(10)
	p1 := r.Push(11)
	if p0 != 0 || p1 != 1 || r.Len() != 2 {
		t.Fatalf("push positions %d %d len %d", p0, p1, r.Len())
	}
	if *r.At(p1) != 11 {
		t.Error("At returned wrong entry")
	}
	*r.At(p0) = 99
	if got := r.Pop(); got != 99 {
		t.Errorf("pop = %d", got)
	}
	if r.Head() != 1 || r.Tail() != 2 {
		t.Errorf("head/tail = %d/%d", r.Head(), r.Tail())
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing[uint64](4)
	for i := uint64(0); i < 100; i++ {
		pos := r.Push(i)
		if pos != i {
			t.Fatalf("position %d != %d", pos, i)
		}
		if got := r.Pop(); got != i {
			t.Fatalf("pop %d != %d", got, i)
		}
	}
}

func TestRingOverflowUnderflow(t *testing.T) {
	r := NewRing[int](2)
	r.Push(1)
	r.Push(2)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("overflow must panic")
			}
		}()
		r.Push(3)
	}()
	r.Pop()
	r.Pop()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("underflow must panic")
			}
		}()
		r.Pop()
	}()
}

func TestRingTruncate(t *testing.T) {
	r := NewRing[int](8)
	for i := 0; i < 6; i++ {
		r.Push(i)
	}
	r.Pop() // head = 1
	r.TruncateTo(3)
	if r.Len() != 2 || r.Tail() != 3 {
		t.Errorf("after truncate: len=%d tail=%d", r.Len(), r.Tail())
	}
	// Truncate below head clamps.
	r.TruncateTo(0)
	if r.Tail() != r.Head() {
		t.Error("truncate below head must empty the ring")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("truncate beyond tail must panic")
			}
		}()
		r.TruncateTo(100)
	}()
}

func TestRingAtBounds(t *testing.T) {
	r := NewRing[int](4)
	r.Push(5)
	for _, pos := range []uint64{1, 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d) must panic", pos)
				}
			}()
			r.At(pos)
		}()
	}
}

func TestRingCapacityValidation(t *testing.T) {
	for _, n := range []int{0, 3, -8} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("capacity %d must panic", n)
				}
			}()
			NewRing[int](n)
		}()
	}
}

func TestIssueQueue(t *testing.T) {
	q := NewIssueQueue(3)
	q.Add(10)
	q.Add(11)
	q.Add(14)
	if !q.Full() || q.Len() != 3 || q.Cap() != 3 {
		t.Fatal("occupancy wrong")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("overflow must panic")
			}
		}()
		q.Add(15)
	}()
	// Remove the first and third entries (issued this cycle).
	q.RemoveIndexes([]int{0, 2})
	if q.Len() != 1 || q.Entries()[0] != 11 {
		t.Errorf("after removal: %v", q.Entries())
	}
	q.RemoveIndexes(nil)
	if q.Len() != 1 {
		t.Error("empty removal must be a no-op")
	}
}

func TestIssueQueueFlush(t *testing.T) {
	q := NewIssueQueue(8)
	for _, p := range []uint64{3, 5, 9, 12} {
		q.Add(p)
	}
	q.FlushFrom(9)
	if q.Len() != 2 || q.Entries()[1] != 5 {
		t.Errorf("after flush: %v", q.Entries())
	}
	q.Reset()
	if q.Len() != 0 {
		t.Error("reset must empty")
	}
}

func TestMOBForwarding(t *testing.T) {
	m := NewMOB(8)
	m.AddStore(5, 0x1000, 4)
	m.AddStore(8, 0x1000, 4)
	// Load younger than both forwards from the youngest older store.
	if !m.Forward(10, 0x1000, 4) {
		t.Error("full-cover forward must succeed")
	}
	// Load between the stores forwards from the older one only.
	if !m.Forward(7, 0x1000, 4) {
		t.Error("forward from older store must succeed")
	}
	// Load older than all stores cannot forward.
	if m.Forward(3, 0x1000, 4) {
		t.Error("load older than stores must not forward")
	}
	// Partial overlap does not forward.
	m.AddStore(9, 0x2000, 1)
	if m.Forward(10, 0x2000, 4) {
		t.Error("partial cover must not forward")
	}
	// Narrower load fully covered by a wider store forwards only on exact
	// address match per the model.
	m.AddStore(11, 0x3000, 4)
	if !m.Forward(12, 0x3000, 1) {
		t.Error("same-address narrower load forwards")
	}
	if m.Forward(12, 0x3002, 1) {
		t.Error("offset load within store does not forward in this model")
	}
}

func TestMOBRetireFlush(t *testing.T) {
	m := NewMOB(4)
	m.AddStore(1, 0x10, 4)
	m.AddStore(2, 0x20, 4)
	m.AddStore(3, 0x30, 4)
	m.RetireStore(1)
	if m.Len() != 2 {
		t.Errorf("len after retire = %d", m.Len())
	}
	m.RetireStore(99) // absent: no-op
	m.FlushFrom(3)
	if m.Len() != 1 {
		t.Errorf("len after flush = %d", m.Len())
	}
	if m.Forward(9, 0x30, 4) {
		t.Error("flushed store must not forward")
	}
	m.Reset()
	if m.Len() != 0 || m.Full() {
		t.Error("reset state wrong")
	}
}

func TestMOBOverflow(t *testing.T) {
	m := NewMOB(1)
	m.AddStore(1, 0, 4)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MOB overflow must panic")
			}
		}()
		m.AddStore(2, 4, 4)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero capacity must panic")
			}
		}()
		NewMOB(0)
	}()
}

// TestRingFIFOProperty: pushes pop in order under arbitrary interleaving.
func TestRingFIFOProperty(t *testing.T) {
	f := func(ops []bool) bool {
		r := NewRing[int](64)
		next, expect := 0, 0
		for _, push := range ops {
			if push && !r.Full() {
				r.Push(next)
				next++
			} else if !push && !r.Empty() {
				if r.Pop() != expect {
					return false
				}
				expect++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
