package queue

// MOB is the single shared memory order buffer (§3.4: "there is a single
// Memory Order Buffer"). It tracks in-flight stores so loads can forward
// from the youngest older store to the same address.
type MOB struct {
	stores []mobStore
	cap    int
}

type mobStore struct {
	pos  uint64 // ROB position of the store
	addr uint32
	size uint8
}

// NewMOB creates a MOB with room for capacity in-flight stores.
func NewMOB(capacity int) *MOB {
	if capacity < 1 {
		panic("queue: MOB capacity must be >= 1")
	}
	return &MOB{cap: capacity, stores: make([]mobStore, 0, capacity)}
}

// Reinit empties the MOB and re-targets it at a (possibly different)
// capacity, reusing the store tracking when it is large enough.
func (m *MOB) Reinit(capacity int) {
	if capacity < 1 {
		panic("queue: MOB capacity must be >= 1")
	}
	m.cap = capacity
	if cap(m.stores) < capacity {
		m.stores = make([]mobStore, 0, capacity)
	} else {
		m.stores = m.stores[:0]
	}
}

// Full reports whether another store can be tracked.
func (m *MOB) Full() bool { return len(m.stores) >= m.cap }

// Len returns the number of in-flight stores.
func (m *MOB) Len() int { return len(m.stores) }

// AddStore registers an in-flight store in program order.
func (m *MOB) AddStore(pos uint64, addr uint32, size uint8) {
	if m.Full() {
		panic("queue: MOB overflow")
	}
	m.stores = append(m.stores, mobStore{pos: pos, addr: addr, size: size})
}

// Forward reports whether a load at ROB position loadPos covering
// [addr, addr+size) can forward from an older in-flight store. Forwarding
// requires the youngest older store overlapping the load to cover it
// fully (same address, size >= load size) — partial overlaps do not
// forward and the load waits for the cache.
func (m *MOB) Forward(loadPos uint64, addr uint32, size uint8) bool {
	for i := len(m.stores) - 1; i >= 0; i-- {
		st := &m.stores[i]
		if st.pos >= loadPos {
			continue
		}
		if overlaps(st.addr, st.size, addr, size) {
			return st.addr == addr && st.size >= size
		}
	}
	return false
}

// RetireStore drops the store at ROB position pos (it committed to the
// cache).
func (m *MOB) RetireStore(pos uint64) {
	for i, st := range m.stores {
		if st.pos == pos {
			m.stores = append(m.stores[:i], m.stores[i+1:]...)
			return
		}
	}
}

// FlushFrom removes all stores at ROB positions >= pos.
func (m *MOB) FlushFrom(pos uint64) {
	out := m.stores[:0]
	for _, st := range m.stores {
		if st.pos < pos {
			out = append(out, st)
		}
	}
	m.stores = out
}

// Reset empties the MOB.
func (m *MOB) Reset() { m.stores = m.stores[:0] }

func overlaps(a uint32, as uint8, b uint32, bs uint8) bool {
	return a < b+uint32(bs) && b < a+uint32(as)
}
