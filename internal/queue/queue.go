// Package queue provides the backend buffering structures of the pipeline:
// a generic circular reorder buffer, bounded issue queues with occupancy
// accounting (the NREADY imbalance metric and the IR imbalance detector
// both read occupancies), and the shared memory order buffer.
package queue

import "fmt"

// Ring is a bounded circular buffer indexed by monotonically increasing
// sequence positions — the shape of a reorder buffer: allocate at the
// tail, retire from the head, flush back to a position.
type Ring[T any] struct {
	buf  []T
	mask uint64
	head uint64 // oldest live position
	tail uint64 // next position to allocate
}

// NewRing creates a ring with the given capacity (power of two).
func NewRing[T any](capacity int) *Ring[T] {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		panic("queue: ring capacity must be a positive power of two")
	}
	return &Ring[T]{buf: make([]T, capacity), mask: uint64(capacity - 1)}
}

// Len returns the number of live entries.
func (r *Ring[T]) Len() int { return int(r.tail - r.head) }

// Cap returns the capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Full reports whether no more entries can be allocated.
func (r *Ring[T]) Full() bool { return r.Len() == len(r.buf) }

// Empty reports whether no entries are live.
func (r *Ring[T]) Empty() bool { return r.head == r.tail }

// Head returns the position of the oldest live entry.
func (r *Ring[T]) Head() uint64 { return r.head }

// Tail returns the next position to be allocated.
func (r *Ring[T]) Tail() uint64 { return r.tail }

// Push allocates a new entry position and returns it.
func (r *Ring[T]) Push(v T) uint64 {
	pos, slot := r.Alloc()
	*slot = v
	return pos
}

// Alloc allocates the next position and returns it together with a pointer
// to its slot so large entries can be initialized in place instead of
// being built locally and copied in. The slot holds whatever a previous
// occupant left behind; the caller must overwrite every field it reads.
func (r *Ring[T]) Alloc() (uint64, *T) {
	if r.Full() {
		panic("queue: ring overflow")
	}
	pos := r.tail
	r.tail++
	return pos, &r.buf[pos&r.mask]
}

// At returns a pointer to the entry at position pos, which must be live.
// The liveness check stays branch-only so At inlines into the scheduler
// scans; the panic formatting lives in badPos.
func (r *Ring[T]) At(pos uint64) *T {
	if pos-r.head >= r.tail-r.head {
		r.badPos(pos)
	}
	return &r.buf[pos&r.mask]
}

//go:noinline
func (r *Ring[T]) badPos(pos uint64) {
	panic(fmt.Sprintf("queue: position %d not live [%d,%d)", pos, r.head, r.tail))
}

// Pop retires the oldest entry.
func (r *Ring[T]) Pop() T {
	if r.Empty() {
		panic("queue: pop from empty ring")
	}
	v := r.buf[r.head&r.mask]
	r.head++
	return v
}

// Drop retires the oldest entry without copying it out (commit discards
// the value; the copy is measurable for large T).
func (r *Ring[T]) Drop() {
	if r.Empty() {
		panic("queue: drop from empty ring")
	}
	r.head++
}

// Reset empties the ring and rewinds the position space to zero. Slot
// contents are left stale; Alloc's contract already requires callers to
// overwrite what they read.
func (r *Ring[T]) Reset() { r.head, r.tail = 0, 0 }

// TruncateTo flushes all entries at positions >= pos (misprediction
// recovery squashes the tail of the ROB).
func (r *Ring[T]) TruncateTo(pos uint64) {
	if pos < r.head {
		pos = r.head
	}
	if pos > r.tail {
		panic(fmt.Sprintf("queue: truncate to %d beyond tail %d", pos, r.tail))
	}
	r.tail = pos
}

// IssueQueue is a bounded, age-ordered list of ROB positions waiting to
// issue in one cluster.
type IssueQueue struct {
	entries []uint64
	cap     int
}

// NewIssueQueue creates a queue with the given capacity.
func NewIssueQueue(capacity int) *IssueQueue {
	if capacity < 1 {
		panic("queue: issue queue capacity must be >= 1")
	}
	return &IssueQueue{cap: capacity, entries: make([]uint64, 0, capacity)}
}

// Reinit empties the queue and re-targets it at a (possibly different)
// capacity, reusing the entry storage when it is large enough.
func (q *IssueQueue) Reinit(capacity int) {
	if capacity < 1 {
		panic("queue: issue queue capacity must be >= 1")
	}
	q.cap = capacity
	if cap(q.entries) < capacity {
		q.entries = make([]uint64, 0, capacity)
	} else {
		q.entries = q.entries[:0]
	}
}

// Len returns the occupancy.
func (q *IssueQueue) Len() int { return len(q.entries) }

// Cap returns the capacity.
func (q *IssueQueue) Cap() int { return q.cap }

// Full reports whether the queue cannot accept another entry.
func (q *IssueQueue) Full() bool { return len(q.entries) >= q.cap }

// Add inserts a ROB position; entries are added in program order so the
// slice stays age-ordered.
func (q *IssueQueue) Add(pos uint64) {
	if q.Full() {
		panic("queue: issue queue overflow")
	}
	q.entries = append(q.entries, pos)
}

// Entries exposes the age-ordered occupancy for the scheduler scan.
func (q *IssueQueue) Entries() []uint64 { return q.entries }

// RemoveIndexes deletes the entries at the given ascending slice indexes
// (the ones selected for issue this cycle), preserving age order.
func (q *IssueQueue) RemoveIndexes(idxs []int) {
	if len(idxs) == 0 {
		return
	}
	out := q.entries[:0]
	k := 0
	for i, e := range q.entries {
		if k < len(idxs) && i == idxs[k] {
			k++
			continue
		}
		out = append(out, e)
	}
	q.entries = out
}

// FlushFrom removes all entries at ROB positions >= pos.
func (q *IssueQueue) FlushFrom(pos uint64) {
	out := q.entries[:0]
	for _, e := range q.entries {
		if e < pos {
			out = append(out, e)
		}
	}
	q.entries = out
}

// Reset empties the queue.
func (q *IssueQueue) Reset() { q.entries = q.entries[:0] }
