package trace

import (
	"bytes"
	"testing"

	"repro/internal/isa"
	"repro/internal/synth"
)

// counterSource emits uops whose Seq increments; DstVal mirrors Seq so
// tests can verify identity.
type counterSource struct{ seq uint64 }

func (c *counterSource) Next(u *isa.Uop) {
	*u = isa.Uop{Seq: c.seq, PC: uint32(c.seq * 4), DstVal: uint32(c.seq), DstReg: 1}
	c.seq++
}

func TestWindowSequentialAndReplay(t *testing.T) {
	w := NewWindow(&counterSource{}, 64)
	for i := uint64(0); i < 40; i++ {
		if got := w.Get(i); got.Seq != i {
			t.Fatalf("Get(%d).Seq = %d", i, got.Seq)
		}
	}
	// Replay: rewinding to an unreleased sequence returns identical uops.
	for i := uint64(10); i < 40; i++ {
		if got := w.Get(i); got.Seq != i || got.DstVal != uint32(i) {
			t.Fatalf("replay Get(%d) mismatch", i)
		}
	}
	if w.Head() != 40 {
		t.Errorf("head = %d, want 40", w.Head())
	}
}

func TestWindowReleaseAndOverflow(t *testing.T) {
	w := NewWindow(&counterSource{}, 16)
	for i := uint64(0); i < 16; i++ {
		w.Get(i)
	}
	// Window is full: fetching one more without releasing must panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected overflow panic")
			}
		}()
		w.Get(16)
	}()
	w.Release(8)
	if w.Base() != 8 {
		t.Errorf("base = %d", w.Base())
	}
	if got := w.Get(20); got.Seq != 20 {
		t.Errorf("Get(20).Seq = %d", got.Seq)
	}
	// Released uops are gone.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected released panic")
			}
		}()
		w.Get(7)
	}()
}

func TestWindowCapacityValidation(t *testing.T) {
	for _, n := range []int{0, -4, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("capacity %d should panic", n)
				}
			}()
			NewWindow(&counterSource{}, n)
		}()
	}
}

func TestWindowReleaseBeyondHeadClamps(t *testing.T) {
	w := NewWindow(&counterSource{}, 16)
	w.Get(3)
	w.Release(100)
	if w.Base() != w.Head() {
		t.Errorf("base %d should clamp to head %d", w.Base(), w.Head())
	}
}

func TestSliceSourceCycles(t *testing.T) {
	uops := Record(&counterSource{}, 5)
	s := NewSliceSource(uops)
	var u isa.Uop
	for i := uint64(0); i < 12; i++ {
		s.Next(&u)
		if u.Seq != i {
			t.Fatalf("cyclic replay must re-stamp Seq: got %d want %d", u.Seq, i)
		}
		if u.PC != uint32((i%5)*4) {
			t.Fatalf("cyclic replay PC mismatch at %d", i)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty slice source must panic")
			}
		}()
		NewSliceSource(nil)
	}()
}

func TestFileRoundTrip(t *testing.T) {
	src := synth.MustNewStream(synth.DefaultParams())
	var buf bytes.Buffer
	const n = 5000
	if err := Write(&buf, src, n); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("read %d records, want %d", len(got), n)
	}
	// Cross-check against a fresh identical stream.
	ref := synth.MustNewStream(synth.DefaultParams())
	var u isa.Uop
	for i := 0; i < n; i++ {
		ref.Next(&u)
		if got[i] != u {
			t.Fatalf("record %d mismatch:\nfile: %+v\nref:  %+v", i, got[i], u)
		}
	}
}

func TestFileBadHeader(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("short header must fail")
	}
	bad := make([]byte, 8)
	if _, err := Read(bytes.NewReader(bad)); err != ErrBadMagic {
		t.Errorf("want ErrBadMagic, got %v", err)
	}
	// Right magic, wrong version.
	bad = []byte{0x31, 0x54, 0x43, 0x48, 9, 0, 0, 0}
	if _, err := Read(bytes.NewReader(bad)); err != ErrBadVersion {
		t.Errorf("want ErrBadVersion, got %v", err)
	}
}

func TestFileTruncatedRecord(t *testing.T) {
	src := synth.MustNewStream(synth.DefaultParams())
	var buf bytes.Buffer
	if err := Write(&buf, src, 3); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-10]
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("truncated record must fail")
	}
}

func TestRecordLength(t *testing.T) {
	uops := Record(&counterSource{}, 7)
	if len(uops) != 7 || uops[6].Seq != 6 {
		t.Errorf("Record wrong: %v", uops)
	}
}
