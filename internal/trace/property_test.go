package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

// TestPackUnpackRoundTrip: property — every representable uop survives the
// binary record encoding bit-exactly.
func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(seq uint64, pc, v0, v1, v2, dst, imm, target, addr uint32,
		classRaw, opRaw, nsrc, r0, r1, r2, dstReg, size uint8, flags uint8) bool {
		u := isa.Uop{
			Seq:     seq,
			PC:      pc,
			Class:   isa.Class(classRaw % uint8(isa.NumClasses)),
			Op:      isa.ALUOp(opRaw % uint8(isa.NumALUOps)),
			NSrc:    nsrc % (isa.MaxSrcs + 1),
			DstReg:  dstReg,
			DstVal:  dst,
			Imm:     imm,
			Target:  target,
			MemAddr: addr,
			MemSize: size,

			HasImm:             flags&1 != 0,
			ReadsFlags:         flags&2 != 0,
			WritesFlags:        flags&4 != 0,
			Taken:              flags&8 != 0,
			FrontendResolvable: flags&16 != 0,
			ImplicitWide:       flags&32 != 0,
		}
		u.SrcReg = [isa.MaxSrcs]uint8{r0, r1, r2}
		u.SrcVal = [isa.MaxSrcs]uint32{v0, v1, v2}

		var buf [recordSize]byte
		packRecord(&buf, &u)
		var back isa.Uop
		unpackRecord(&buf, &back)
		return back == u
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestWindowMatchesDirectStream: property — reading through a window in
// any (valid) interleaving of gets and releases observes exactly the
// underlying stream.
func TestWindowMatchesDirectStream(t *testing.T) {
	f := func(steps []uint8) bool {
		w := NewWindow(&counterSource{}, 64)
		direct := &counterSource{}
		var ref isa.Uop
		next := uint64(0)
		for _, s := range steps {
			switch s % 3 {
			case 0, 1: // advance
				got := w.Get(next)
				direct.Next(&ref)
				if *got != ref {
					return false
				}
				next++
			case 2: // release everything consumed so far
				w.Release(next)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWriteReadLargeTrace(t *testing.T) {
	src := &counterSource{}
	var buf bytes.Buffer
	const n = 100_000
	if err := Write(&buf, src, n); err != nil {
		t.Fatal(err)
	}
	if want := 8 + n*recordSize; buf.Len() != want {
		t.Errorf("file size %d, want %d", buf.Len(), want)
	}
	uops, err := Read(&buf)
	if err != nil || len(uops) != n {
		t.Fatalf("read %d, err %v", len(uops), err)
	}
}
