// Package trace provides the uop supply machinery of the simulator: the
// Source abstraction over infinite uop streams, a replayable fetch window
// (flush recovery rewinds the fetch point without re-executing the
// program), and a compact binary on-disk trace format.
package trace

import "repro/internal/isa"

// Source is an infinite stream of executed uops. synth.Stream implements
// it directly; finite recorded traces are adapted by SliceSource.
type Source interface {
	// Next fills u with the next uop of the stream.
	Next(u *isa.Uop)
}

// SliceSource replays a recorded finite trace cyclically, re-stamping
// sequence numbers so consumers observe a proper infinite stream.
type SliceSource struct {
	uops []isa.Uop
	idx  int
	seq  uint64
}

// NewSliceSource wraps a non-empty recorded trace.
func NewSliceSource(uops []isa.Uop) *SliceSource {
	if len(uops) == 0 {
		panic("trace: empty slice source")
	}
	return &SliceSource{uops: uops}
}

// Next implements Source by cyclic replay.
func (s *SliceSource) Next(u *isa.Uop) {
	*u = s.uops[s.idx]
	u.Seq = s.seq
	s.seq++
	s.idx++
	if s.idx == len(s.uops) {
		s.idx = 0
	}
}

// Record captures the next n uops of a source into a slice (for file
// writing, tests, and offline analysis).
func Record(src Source, n int) []isa.Uop {
	out := make([]isa.Uop, n)
	for i := range out {
		src.Next(&out[i])
	}
	return out
}
