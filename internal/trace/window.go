package trace

import (
	"fmt"

	"repro/internal/isa"
)

// Window is a replayable sliding view over a Source. The timing simulator
// fetches uops by sequence number; on a branch or width misprediction it
// rewinds the fetch point to the squashed uop and refetches the same
// stream. The window retains every uop from the oldest unretired one to
// the newest fetched, so rewinds never re-execute the program.
type Window struct {
	src  Source
	ring []isa.Uop
	mask uint64
	base uint64 // oldest retained sequence number
	head uint64 // next sequence number to pull from the source
}

// NewWindow creates a window retaining up to capacity uops; capacity must
// be a power of two and large enough to cover the ROB plus frontend depth.
func NewWindow(src Source, capacity int) *Window {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		panic("trace: window capacity must be a positive power of two")
	}
	return &Window{
		src:  src,
		ring: make([]isa.Uop, capacity),
		mask: uint64(capacity - 1),
	}
}

// Get returns the uop with the given sequence number, pulling from the
// source as needed. seq must be >= the last Release point and must not run
// more than the capacity ahead of it.
func (w *Window) Get(seq uint64) *isa.Uop {
	if seq < w.base {
		panic(fmt.Sprintf("trace: uop %d already released (base %d)", seq, w.base))
	}
	for seq >= w.head {
		if w.head-w.base >= uint64(len(w.ring)) {
			panic(fmt.Sprintf("trace: window overflow (base %d, head %d, cap %d) — retire before fetching further",
				w.base, w.head, len(w.ring)))
		}
		slot := &w.ring[w.head&w.mask]
		w.src.Next(slot)
		if slot.Seq != w.head {
			panic(fmt.Sprintf("trace: source produced seq %d, expected %d", slot.Seq, w.head))
		}
		w.head++
	}
	return &w.ring[seq&w.mask]
}

// Release discards all uops with sequence numbers below seq; they can no
// longer be fetched or replayed.
func (w *Window) Release(seq uint64) {
	if seq > w.head {
		seq = w.head
	}
	if seq > w.base {
		w.base = seq
	}
}

// Cap returns the retention capacity.
func (w *Window) Cap() int { return len(w.ring) }

// Reset re-targets the window at a new source from sequence zero, reusing
// the ring storage. Stale uops are unreachable: Get refills every slot
// from the new source before returning it.
func (w *Window) Reset(src Source) {
	w.src = src
	w.base, w.head = 0, 0
}

// Base returns the oldest retained sequence number.
func (w *Window) Base() uint64 { return w.base }

// Head returns the next sequence number that would be pulled from the
// source.
func (w *Window) Head() uint64 { return w.head }
