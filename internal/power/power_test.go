package power

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/metrics"
)

func sampleMetrics() metrics.Metrics {
	m := metrics.Metrics{
		Ticks:            20000,
		WideCycles:       10000,
		Committed:        15000,
		Renames:          16000,
		PredictorLookups: 15000,
		Branches:         1500,
		CopiesCreated:    1200,
		FPOps:            100,
	}
	m.RFReads = [2]uint64{20000, 8000}
	m.RFWrites = [2]uint64{9000, 5000}
	m.IQWrites = [2]uint64{12000, 6000}
	m.Issues = [2]uint64{12000, 6000}
	m.ALUOps = [2]uint64{8000, 5000}
	m.AGUOps = [2]uint64{3000, 500}
	return m
}

func sampleCaches() (l1, l2, tc cache.Stats) {
	l1 = cache.Stats{Accesses: 4000, Misses: 100}
	l2 = cache.Stats{Accesses: 100, Misses: 10}
	tc = cache.Stats{Accesses: 3000, Misses: 20}
	return
}

func TestEstimatePositiveAndConsistent(t *testing.T) {
	m := sampleMetrics()
	l1, l2, tc := sampleCaches()
	r := New(config.WithHelper()).Estimate(&m, l1, l2, tc)
	if r.EnergyNJ <= 0 {
		t.Fatal("energy must be positive")
	}
	if r.ED2 != r.EnergyNJ*float64(m.WideCycles)*float64(m.WideCycles) {
		t.Error("ED2 must be energy × delay²")
	}
	b := r.Breakdown
	if got := b.Total(); got < r.EnergyNJ*0.999 || got > r.EnergyNJ*1.001 {
		t.Errorf("breakdown total %.3f != energy %.3f", got, r.EnergyNJ)
	}
	for name, v := range map[string]float64{
		"frontend": b.Frontend, "regfiles": b.RegFiles, "iq": b.IssueQueue,
		"execute": b.Execute, "memory": b.Memory, "copies": b.Copies,
		"clock": b.Clock, "leakage": b.Leakage,
	} {
		if v < 0 {
			t.Errorf("%s energy negative", name)
		}
	}
}

func TestHelperClusterCostsEnergy(t *testing.T) {
	m := sampleMetrics()
	l1, l2, tc := sampleCaches()
	withHelper := New(config.WithHelper()).Estimate(&m, l1, l2, tc)
	baseline := New(config.PentiumLikeBaseline()).Estimate(&m, l1, l2, tc)
	if withHelper.EnergyNJ <= baseline.EnergyNJ {
		t.Error("the helper cluster's clock and leakage must add energy for identical events")
	}
}

func TestNarrowDatapathCheaper(t *testing.T) {
	// Moving the same ALU work from wide to helper should cut execute
	// energy by the width scale.
	mWide := sampleMetrics()
	mWide.ALUOps = [2]uint64{10000, 0}
	mHelper := sampleMetrics()
	mHelper.ALUOps = [2]uint64{0, 10000}
	l1, l2, tc := sampleCaches()
	model := New(config.WithHelper())
	rw := model.Estimate(&mWide, l1, l2, tc)
	rh := model.Estimate(&mHelper, l1, l2, tc)
	if rh.Breakdown.Execute >= rw.Breakdown.Execute {
		t.Errorf("8-bit ALU ops must be cheaper: %.3f vs %.3f",
			rh.Breakdown.Execute, rw.Breakdown.Execute)
	}
}

func TestED2Gain(t *testing.T) {
	a := Report{ED2: 80}
	b := Report{ED2: 100}
	if got := ED2Gain(a, b); got < 0.199 || got > 0.201 {
		t.Errorf("gain = %f, want 0.2", got)
	}
	if ED2Gain(a, Report{}) != 0 {
		t.Error("zero baseline must yield zero gain")
	}
}

func TestFasterRunWinsED2(t *testing.T) {
	// A run 20% faster with the same events wins ED² even with the
	// helper's extra static power.
	m := sampleMetrics()
	l1, l2, tc := sampleCaches()
	fast := m
	fast.WideCycles = 8000
	fast.Ticks = 16000
	rb := New(config.PentiumLikeBaseline()).Estimate(&m, l1, l2, tc)
	rf := New(config.WithHelper()).Estimate(&fast, l1, l2, tc)
	if ED2Gain(rf, rb) <= 0 {
		t.Errorf("20%% delay cut must win ED²: gain = %f", ED2Gain(rf, rb))
	}
}
