// Package power is the Wattch-like architectural power model of §3.1: it
// converts the event counts collected by the timing simulator into energy,
// including the helper cluster's 8-bit datapath, its 2× clock network and
// the width predictors, and computes the energy-delay² comparison of §3.7.
//
// As in Wattch, structure energies are analytical: they scale with entry
// count, port count and datapath width. Absolute joules are not meaningful
// — only the relative comparison between configurations of the same
// technology is, which is exactly how the paper uses them.
package power

import (
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/metrics"
)

// Unit energies in picojoules for the wide (32-bit) structures; narrow
// structures scale these by datapath width. The constants follow Wattch's
// relative ordering (memory ≫ caches ≫ register files ≫ logic).
const (
	pjRFReadWide  = 0.9
	pjRFWriteWide = 1.1
	pjIQWrite     = 1.0 // CAM write, scales with data width
	pjIQSelect    = 0.8
	pjALUWide     = 2.2 // §2.2: ALU energy scales ~linearly with width
	pjAGUWide     = 1.8
	pjFPU         = 6.0
	pjL1Access    = 4.0
	pjL2Access    = 24.0
	pjMemAccess   = 220.0
	pjTCAccess    = 2.5
	pjRename      = 1.2
	pjWidthPred   = 0.15 // 256×1-bit tagless table (§3.2)
	pjBranchPred  = 0.6
	pjCopyWire    = 1.6 // inter-cluster transfer per copy
	pjWideClock   = 6.0 // per wide cycle
	pjHelperClock = 1.1 // per helper tick: small domain at 2× frequency
	pjLeakPerTick = 0.9 // baseline leakage per tick
	pjLeakHelper  = 0.2 // additional helper-cluster leakage per tick
)

// widthScale returns the energy ratio of a narrow datapath to the 32-bit
// one; slightly above the naive width/32 because control overhead does not
// shrink with the datapath (§2.1).
func widthScale(bits int) float64 {
	return 0.07 + float64(bits)/32*0.92
}

// Breakdown itemizes estimated energy in nanojoules.
type Breakdown struct {
	Frontend   float64 // trace cache, rename, predictors
	RegFiles   float64
	IssueQueue float64
	Execute    float64 // ALUs, AGUs, FPU
	Memory     float64 // DL0, UL1, main memory
	Copies     float64 // inter-cluster wires
	Clock      float64
	Leakage    float64
}

// Total sums the breakdown.
func (b Breakdown) Total() float64 {
	return b.Frontend + b.RegFiles + b.IssueQueue + b.Execute +
		b.Memory + b.Copies + b.Clock + b.Leakage
}

// Report is the outcome of an estimate.
type Report struct {
	Breakdown Breakdown
	// EnergyNJ is the total estimated energy in nanojoules.
	EnergyNJ float64
	// WideCycles is the run's delay in wide-cluster cycles.
	WideCycles uint64
	// ED2 is energy × delay² (nJ·cycle²), the §3.7 efficiency metric.
	ED2 float64
}

// Model estimates energy for one machine configuration.
type Model struct {
	cfg config.Processor
}

// New builds a model for the configuration.
func New(cfg config.Processor) *Model { return &Model{cfg: cfg} }

// scaleFor returns the datapath-width energy scale of a cluster.
func (mod *Model) scaleFor(cluster int) float64 {
	if cluster == config.Helper {
		bits := mod.cfg.HelperWidthBits
		if bits == 0 {
			bits = 8
		}
		return widthScale(bits)
	}
	return 1
}

// Estimate converts event counts into energy.
func (mod *Model) Estimate(m *metrics.Metrics, l1, l2, tc cache.Stats) Report {
	var b Breakdown
	pj := func(v float64) float64 { return v / 1000 } // pJ → nJ

	// Frontend: one TC access per fetched line approximated by accesses
	// recorded in the trace-cache stats, a rename-table access and width
	// predictor lookup per rename, and a branch predictor access per
	// branch.
	b.Frontend = pj(float64(tc.Accesses)*pjTCAccess +
		float64(m.Renames)*pjRename +
		float64(m.PredictorLookups)*pjWidthPred +
		float64(m.Branches)*pjBranchPred)

	for c := 0; c < 2; c++ {
		s := mod.scaleFor(c)
		b.RegFiles += pj(float64(m.RFReads[c])*pjRFReadWide*s +
			float64(m.RFWrites[c])*pjRFWriteWide*s)
		b.IssueQueue += pj(float64(m.IQWrites[c])*pjIQWrite*s +
			float64(m.Issues[c])*pjIQSelect)
		b.Execute += pj(float64(m.ALUOps[c])*pjALUWide*s +
			float64(m.AGUOps[c])*pjAGUWide*s)
	}
	b.Execute += pj(float64(m.FPOps) * pjFPU)

	memAccesses := l2.Misses // filled from memory
	b.Memory = pj(float64(l1.Accesses)*pjL1Access +
		float64(l2.Accesses)*pjL2Access +
		float64(memAccesses)*pjMemAccess)

	b.Copies = pj(float64(m.CopiesCreated) * pjCopyWire)

	b.Clock = pj(float64(m.WideCycles) * pjWideClock)
	leak := float64(m.Ticks) * pjLeakPerTick
	if mod.cfg.HelperEnabled {
		b.Clock += pj(float64(m.Ticks) * pjHelperClock)
		leak += float64(m.Ticks) * pjLeakHelper
	}
	b.Leakage = pj(leak)

	total := b.Total()
	d := float64(m.WideCycles)
	return Report{
		Breakdown:  b,
		EnergyNJ:   total,
		WideCycles: m.WideCycles,
		ED2:        total * d * d,
	}
}

// ED2Gain returns the relative energy-delay² advantage of r over base:
// positive means r is more efficient (the paper reports 5.1% for the IR
// configuration, §3.7).
func ED2Gain(r, base Report) float64 {
	if base.ED2 == 0 {
		return 0
	}
	return 1 - r.ED2/base.ED2
}
