package repro

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/grid"
)

func TestJobHash(t *testing.T) {
	w := mustWorkload(t, "gcc")
	j := Job{Policy: PolicyFull(), Workload: w, N: 10_000, Warmup: 2_000}
	h1, err := j.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := j.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("hash not stable: %s vs %s", h1, h2)
	}
	if len(h1) != len("sha256:")+64 {
		t.Fatalf("hash %q not sha256-shaped", h1)
	}

	// The hash is over the canonical (resolved) form: a zero Config and
	// its explicit policy-derived equivalent address the same simulation.
	explicit := j
	explicit.Config = HelperConfig()
	he, err := explicit.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if he != h1 {
		t.Errorf("zero config (%s) and resolved config (%s) hash differently", h1, he)
	}

	// Any knob that changes the simulation changes the hash.
	for name, mut := range map[string]func(Job) Job{
		"n":        func(j Job) Job { j.N++; return j },
		"warmup":   func(j Job) Job { j.Warmup++; return j },
		"policy":   func(j Job) Job { j.Policy = Policy888(); return j },
		"workload": func(j Job) Job { j.Workload = mustWorkload(t, "mcf"); return j },
		"name":     func(j Job) Job { j.Name = "label"; return j },
	} {
		hm, err := mut(j).Hash()
		if err != nil {
			t.Fatal(err)
		}
		if hm == h1 {
			t.Errorf("mutating %s did not change the hash", name)
		}
	}
}

// TestRunAllDedupe checks that identical jobs in one RunAll batch are
// simulated once and fanned out: the progress callback (one invocation
// per executed job) counts unique jobs only.
func TestRunAllDedupe(t *testing.T) {
	w := mustWorkload(t, "gcc")
	a := Job{Policy: Policy888(), Workload: w, N: 3_000}
	b := Job{Policy: PolicyFull(), Workload: w, N: 3_000}
	var mu sync.Mutex
	executed := 0
	var total int
	r := NewRunner(WithProgress(func(p Progress) {
		mu.Lock()
		executed++
		total = p.Total
		mu.Unlock()
	}))
	results, err := r.RunAll(context.Background(), []Job{a, b, a, a})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results for 4 jobs", len(results))
	}
	mu.Lock()
	defer mu.Unlock()
	if executed != 2 || total != 2 {
		t.Errorf("executed %d jobs (progress total %d), want 2 unique", executed, total)
	}
	if !reflect.DeepEqual(results[0], results[2]) || !reflect.DeepEqual(results[0], results[3]) {
		t.Error("duplicate jobs received different results")
	}
	if reflect.DeepEqual(results[0], results[1]) {
		t.Error("distinct jobs received the same result")
	}
	if results[0].Policy != a.Policy.Name() || results[1].Policy != b.Policy.Name() {
		t.Error("fan-out scrambled result order")
	}
}

// TestRunAllJobError checks the failed-job attribution: RunAll wraps the
// first real failure in a *JobError carrying the original index and job.
func TestRunAllJobError(t *testing.T) {
	w := mustWorkload(t, "gcc")
	good := Job{Policy: PolicyBaseline(), Workload: w, N: 2_000}
	bad := Job{Name: "broken", Policy: PolicyBaseline(), Workload: w} // N == 0
	_, err := NewRunner().RunAll(context.Background(), []Job{good, bad})
	if err == nil {
		t.Fatal("invalid job did not fail the batch")
	}
	var jerr *JobError
	if !errors.As(err, &jerr) {
		t.Fatalf("RunAll error %T does not unwrap to *JobError", err)
	}
	if jerr.Index != 1 || jerr.Job.Name != "broken" {
		t.Errorf("JobError blames index %d job %q, want 1 %q", jerr.Index, jerr.Job.Name, "broken")
	}
	if _, merr := json.Marshal(jerr.Job); merr != nil {
		t.Errorf("failed job is not marshallable for reporting: %v", merr)
	}
}

// testGridRunner builds a grid (server + nWorkers in-process workers
// executing via the progress-capable JobExecProgress, like production
// helperd workers) and a Runner dispatching to it; everything is torn
// down with the test.
func testGridRunner(t *testing.T, nWorkers int, opts ...Option) (*Runner, *grid.Server) {
	return testGridRunnerTTL(t, nWorkers, 2*time.Second, opts...)
}

// testGridRunnerTTL is testGridRunner with a chosen lease TTL — workers
// heartbeat (and therefore publish progress) at TTL/3, so progress tests
// use a short one.
func testGridRunnerTTL(t *testing.T, nWorkers int, ttl time.Duration, opts ...Option) (*Runner, *grid.Server) {
	t.Helper()
	srv := grid.NewServer(grid.WithLeaseTTL(ttl))
	ts := httptest.NewServer(srv)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < nWorkers; i++ {
		w := &grid.Worker{
			Server:       ts.URL,
			Name:         fmt.Sprintf("tw%d", i),
			ExecProgress: NewRunner().JobExecProgress(20_000),
			Parallel:     2,
			LeaseWait:    100 * time.Millisecond,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}
	t.Cleanup(func() {
		cancel()
		wg.Wait()
		ts.Close()
		srv.Close()
	})
	return NewRunner(append([]Option{WithGrid(ts.URL)}, opts...)...), srv
}

// TestWithGridEndToEnd is the bit-equivalence acceptance test at the API
// level: the same batch through a grid of two workers and through the
// local pool must produce deeply equal Results, and a rerun must be
// served from the content-addressed store.
func TestWithGridEndToEnd(t *testing.T) {
	var jobs []Job
	for _, name := range []string{"gcc", "gzip"} {
		w := mustWorkload(t, name)
		jobs = append(jobs,
			Job{Policy: PolicyBaseline(), Workload: w, N: 4_000},
			Job{Policy: PolicyFull(), Workload: w, N: 4_000},
			Job{Policy: PolicyDynamic(), Workload: w, N: 4_000}, // dynamic policies travel by name
		)
	}
	local, err := NewRunner().RunAll(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	remote, srv := testGridRunner(t, 2)
	viaGrid, err := remote.RunAll(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(local, viaGrid) {
		t.Fatal("grid-routed results differ from local results")
	}

	again, err := remote.RunAll(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(local, again) {
		t.Fatal("cached grid results differ from local results")
	}
	m := srv.Metrics()
	if m.CacheHits < uint64(len(jobs)) {
		t.Errorf("rerun hit the cache %d times, want >= %d", m.CacheHits, len(jobs))
	}
	if got, err := remote.GridMetrics(context.Background()); err != nil || got.CacheHits != m.CacheHits {
		t.Errorf("GridMetrics = %+v, %v; want cache hits %d", got, err, m.CacheHits)
	}
}

// TestWithGridPerJobError mirrors TestRunBatchPerJobError over the wire:
// an invalid job fails fast client-side while the rest of the batch
// completes remotely.
func TestWithGridPerJobError(t *testing.T) {
	w := mustWorkload(t, "gcc")
	remote, _ := testGridRunner(t, 1)
	bad := Job{Policy: PolicyBaseline(), Workload: w} // N == 0
	good := Job{Policy: PolicyBaseline(), Workload: w, N: 2_000}
	var badErr, goodErr error
	var goodRes Result
	for jr := range remote.RunBatch(context.Background(), []Job{bad, good}) {
		switch jr.Index {
		case 0:
			badErr = jr.Err
		case 1:
			goodErr, goodRes = jr.Err, jr.Result
		}
	}
	if badErr == nil {
		t.Error("invalid job must surface its error in JobResult")
	}
	if goodErr != nil {
		t.Errorf("valid job failed alongside invalid one: %v", goodErr)
	}
	if goodRes.Metrics.Committed < good.N {
		t.Errorf("grid result committed %d, want >= %d", goodRes.Metrics.Committed, good.N)
	}
}

// TestWithGridCancellation cancels a grid batch mid-stream: the channel
// must close promptly and RunAll must report the context error.
func TestWithGridCancellation(t *testing.T) {
	w := mustWorkload(t, "gcc")
	remote, _ := testGridRunner(t, 1)
	var jobs []Job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, Job{Name: fmt.Sprintf("big%d", i), Policy: PolicyFull(), Workload: w, N: 1 << 40})
	}
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(100*time.Millisecond, cancel)
	done := make(chan error, 1)
	go func() {
		_, err := remote.RunAll(ctx, jobs)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled grid RunAll err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled grid batch did not unwind")
	}
}

// TestWithGridProgressAndEarlyStop drives the observability leg at the
// API level: a batch under WithGridProgress must surface interval
// events (uops, total, rung) for a long-running job, and calling the
// event's Stop hook must end that job with ErrJobStopped while its
// batch siblings complete untouched — with the early stop visible in
// the server's lease counters.
func TestWithGridProgressAndEarlyStop(t *testing.T) {
	w := mustWorkload(t, "gcc")
	// The huge job can only finish quickly by being stopped; the quick
	// one proves stopping is per-job, not per-batch. The explicit tiny
	// warmup matters: progress (and therefore the stop) only starts with
	// the measured phase, and the default warmup of a 200M-uop job would
	// stall the test for tens of seconds before the first event.
	jobs := []Job{
		{Name: "quick", Policy: PolicyBaseline(), Workload: w, N: 3_000},
		{Name: "huge", Policy: PolicyFull(), Workload: w, N: 200_000_000, Warmup: 1_000},
	}

	type event struct {
		p       JobProgress
		stopped bool
	}
	events := make(chan event, 256)
	stopped := false
	remote, srv := testGridRunnerTTL(t, 1, 150*time.Millisecond, WithGridProgress(func(p JobProgress) {
		// Serial per the contract, so plain locals are safe.
		if p.Job.Name == "huge" && !stopped {
			stopped = true
			p.Stop()
		}
		select {
		case events <- event{p: p, stopped: stopped}:
		default:
		}
	}))

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	var quickErr, hugeErr error
	var quickRes Result
	for jr := range remote.RunBatch(ctx, jobs) {
		switch jr.Job.Name {
		case "quick":
			quickErr, quickRes = jr.Err, jr.Result
		case "huge":
			hugeErr = jr.Err
		}
	}
	if ctx.Err() != nil {
		t.Fatal("early stop never took effect; batch ran to timeout")
	}
	if quickErr != nil {
		t.Errorf("sibling job failed: %v", quickErr)
	}
	if quickRes.Metrics.Committed < jobs[0].N {
		t.Errorf("sibling committed %d, want >= %d", quickRes.Metrics.Committed, jobs[0].N)
	}
	if !errors.Is(hugeErr, ErrJobStopped) {
		t.Errorf("stopped job err = %v, want ErrJobStopped", hugeErr)
	}

	saw := false
	for len(events) > 0 {
		ev := <-events
		if ev.p.Job.Name != "huge" {
			continue
		}
		saw = true
		if ev.p.Uops == 0 || ev.p.Total != jobs[1].N || ev.p.Rung == "" || ev.p.Worker == "" {
			t.Errorf("progress event lost fields: %+v", ev.p)
		}
		if ev.p.Stop == nil {
			t.Error("progress event has no Stop hook")
		}
	}
	if !saw {
		t.Fatal("no progress events for the long-running job")
	}
	if m := srv.Metrics(); m.EarlyStopped != 1 || m.ProgressUpdates == 0 {
		t.Errorf("metrics = %+v, want EarlyStopped=1, ProgressUpdates>0", m)
	}
}

// TestWithGridSubmitError covers the no-server case: every job fails
// with a dispatch error instead of hanging.
func TestWithGridSubmitError(t *testing.T) {
	w := mustWorkload(t, "gcc")
	r := NewRunner(WithGrid("127.0.0.1:1")) // nothing listens on port 1
	jobs := []Job{
		{Policy: PolicyBaseline(), Workload: w, N: 2_000},
		{Policy: PolicyFull(), Workload: w, N: 2_000},
	}
	n := 0
	for jr := range r.RunBatch(context.Background(), jobs) {
		if jr.Err == nil {
			t.Errorf("job %d succeeded with no server", jr.Index)
		}
		n++
	}
	if n != len(jobs) {
		t.Errorf("delivered %d results, want %d", n, len(jobs))
	}
	if _, err := r.Run(context.Background(), jobs[0]); err == nil {
		t.Error("Run succeeded with no server")
	}
}

// TestWithGridFailover covers multi-peer dispatch with a dead member.
// The dead peer is chosen so that it rendezvous-WINS the jobs' locality
// profile — every job's first-choice server refuses connections — and
// the batch must still finish through the live peer, byte-identical to
// a local run.
func TestWithGridFailover(t *testing.T) {
	w := mustWorkload(t, "gcc")
	srv := grid.NewServer(grid.WithLeaseTTL(2 * time.Second))
	ts := httptest.NewServer(srv)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		gw := &grid.Worker{Server: ts.URL, Name: fmt.Sprintf("fo%d", i),
			ExecProgress: NewRunner().JobExecProgress(0), Parallel: 2,
			LeaseWait: 100 * time.Millisecond}
		wg.Add(1)
		go func() {
			defer wg.Done()
			gw.Run(ctx)
		}()
	}
	t.Cleanup(func() {
		cancel()
		wg.Wait()
		ts.Close()
		srv.Close()
	})

	jobs := []Job{
		{Policy: PolicyBaseline(), Workload: w, N: 2_000},
		{Policy: PolicyBaseline(), Workload: w, N: 3_000},
		{Policy: PolicyBaseline(), Workload: w, N: 4_000},
	}
	// All three jobs share one profile (same workload+config); pick a
	// dead address that outranks the live server for it, so failover is
	// guaranteed to be on the path, not left to hashing luck.
	prof := profileKey(jobs[0])
	dead := ""
	for port := 1; port < 100; port++ {
		cand := fmt.Sprintf("http://127.0.0.1:%d", port)
		if peerOrder(prof, []string{cand, ts.URL})[0] == cand {
			dead = cand
			break
		}
	}
	if dead == "" {
		t.Fatal("no candidate address outranks the live server")
	}

	gridRes, err := NewRunner(WithGrid(dead+","+ts.URL)).RunAll(context.Background(), jobs)
	if err != nil {
		t.Fatalf("federated batch with one dead peer failed: %v", err)
	}
	localRes, err := NewRunner().RunAll(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if !reflect.DeepEqual(gridRes[i], localRes[i]) {
			t.Errorf("job %d: failover result differs from local run", i)
		}
	}
	if m := srv.Metrics(); m.Submitted != uint64(len(jobs)) {
		t.Errorf("live peer saw %d submissions, want %d", m.Submitted, len(jobs))
	}
}
