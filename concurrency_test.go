package repro

// Fan-out safety of the new stateful selectors: RunBatch hands one shared
// policy value to many concurrent simulations, and steer.Fresh must give
// each of them a private clone whose per-phase maps are fresh storage —
// a shallow copy would race on the phase-keyed score/arm tables under
// -race and corrupt adaptation without it.

import (
	"context"
	"testing"
)

// fanOutShared runs n identical jobs sharing one policy value and checks
// that every simulation produced the identical result (private clones
// adapt deterministically) and that the caller's instance stays pristine.
func fanOutShared(t *testing.T, shared Policy) {
	t.Helper()
	w := mustWorkload(t, "crafty")
	const n = 8
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Policy: shared, Workload: w, N: 10_000, Warmup: 2_000}
	}
	results, err := NewRunner(WithWorkers(4)).RunAll(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if results[i].Metrics != results[0].Metrics {
			t.Errorf("%s: job %d diverged from job 0 — clones must not share adaptive state", shared.Name(), i)
		}
		if len(results[i].Rungs) != len(results[0].Rungs) {
			t.Fatalf("%s: job %d usage shape diverged", shared.Name(), i)
		}
		for k := range results[i].Rungs {
			if results[i].Rungs[k] != results[0].Rungs[k] {
				t.Errorf("%s: job %d rung %d diverged", shared.Name(), i, k)
			}
		}
	}
	if ur, ok := shared.(interface{ Usage() []RungUsage }); ok {
		for _, u := range ur.Usage() {
			if u.Committed != 0 || u.EnergyNJ != 0 {
				t.Errorf("%s: the caller's shared instance accumulated usage", shared.Name())
			}
		}
	}
	if ph, ok := shared.(interface{ Phases() int }); ok {
		if ph.Phases() != 0 {
			t.Errorf("%s: the caller's shared instance accumulated per-phase state", shared.Name())
		}
	}
}

func TestRunBatchSharedUCB(t *testing.T) {
	p, err := PolicyByName("dyn:ucb(cr,cp,ir,reward=ed2,interval=2k,c=1.4)")
	if err != nil {
		t.Fatal(err)
	}
	fanOutShared(t, p)
}

func TestRunBatchSharedPhasedTournament(t *testing.T) {
	p, err := PolicyByName("dyn:tournament(cr,cp,ir,interval=2k,run=3,phase=on)")
	if err != nil {
		t.Fatal(err)
	}
	fanOutShared(t, p)
}
