package repro

import (
	"encoding/json"
	"testing"
)

// TestPolicyNameRoundTripProperty pins the registry's core contract over
// every advertised policy, static and dynamic: resolving a policy's
// rendered name reproduces a policy with the identical name (and, for
// static policies, the identical value).
func TestPolicyNameRoundTripProperty(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := PolicyByName(name)
		if err != nil {
			t.Errorf("PolicyByName(%q): %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("PolicyByName(%q).Name() = %q: advertised names must be canonical", name, p.Name())
		}
		back, err := PolicyByName(p.Name())
		if err != nil {
			t.Errorf("ByName(Name()) failed for %q: %v", p.Name(), err)
			continue
		}
		if back.Name() != p.Name() {
			t.Errorf("round trip drifted: %q -> %q", p.Name(), back.Name())
		}
		if f, ok := p.(PolicyFeatures); ok {
			if back != Policy(f) {
				t.Errorf("static policy %q did not round-trip by value: %+v vs %+v", name, back, f)
			}
		}
	}
}

// TestParameterizedDynamicNamesRoundTrip exercises non-default dynamic
// parameterizations: custom candidate lists, intervals that are not round
// thousands, and explicit run/threshold parameters.
func TestParameterizedDynamicNamesRoundTrip(t *testing.T) {
	cases := []string{
		"dyn:tournament(8_8_8+BR,8_8_8+BR+LR,interval=50k,run=8)",
		"dyn:tournament(baseline,8_8_8,8_8_8+BR+LR+CR+CP+IRblk,interval=2500,run=1)",
		"dyn:tournament(8_8_8+BR,8_8_8+BR+LR,interval=50k,run=8,phase=on)",
		"dyn:occupancy(8_8_8+BR+LR+CR+CP+IR,th=40,interval=20k)",
		"dyn:occupancy(8_8_8+BR+LR+CR+CP+IRnd,th=10,interval=1500)",
		"dyn:ucb(8_8_8+BR,8_8_8+BR+LR,reward=ipc,interval=50k,c=1.4)",
		"dyn:ucb(8_8_8,8_8_8+BR+LR+CR,8_8_8+BR+LR+CR+CP+IR,reward=ed2,interval=2500,c=0)",
		"dyn:ucb(8_8_8+BR,8_8_8+BR+LR+CR+CP+IRblk,reward=ed2,interval=333,c=2.5)",
	}
	for _, name := range cases {
		p, err := PolicyByName(name)
		if err != nil {
			t.Errorf("PolicyByName(%q): %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("canonical rendering drifted: %q -> %q", name, p.Name())
		}
	}

	for _, bad := range []string{
		"dyn:tournament(8_8_8)",                      // one candidate
		"dyn:tournament(8_8_8,8_8_8)",                // duplicate candidates
		"dyn:tournament(8_8_8,nosuch)",               // unknown rung
		"dyn:tournament(8_8_8,dyn,interval=10k)",     // nested dynamic
		"dyn:tournament(8_8_8,8_8_8+BR,bogus=1)",     // unknown parameter
		"dyn:occupancy(8_8_8)",                       // base without IR
		"dyn:occupancy(full,th=0)",                   // threshold out of range
		"dyn:occupancy(full,interval=0)",             // zero interval
		"dyn:occupancy(full,8_8_8)",                  // two base rungs
		"dyn:mystery(8_8_8,8_8_8+BR)",                // unknown kind
		"dyn:tournament(8_8_8,8_8_8+BR,interval=xk)", // unparseable interval
		"dyn:tournament",                             // no argument list
		"dyn:tournament(8_8_8,8_8_8+BR,run=4x)",      // trailing junk in run
		"dyn:tournament(8_8_8,8_8_8+BR,phase=soon)",  // bad phase mode
		"dyn:occupancy(full,th=25.5)",                // fractional percent
		"dyn:ucb(",                                   // unterminated
		"dyn:ucb(8_8_8)",                             // one arm
		"dyn:ucb(8_8_8,nosuch)",                      // unknown rung
		"dyn:ucb(8_8_8,8_8_8+BR,interval=-50k)",      // negative interval
		"dyn:ucb(8_8_8,8_8_8+BR,reward=speed)",       // unknown reward
		"dyn:ucb(8_8_8,8_8_8+BR,c=-1)",               // negative exploration
		"dyn:ucb(8_8_8,8_8_8+BR,c=zz)",               // unparseable constant
		"dyn:ucb(8_8_8,8_8_8+BR,run=4)",              // tournament-only param
	} {
		if _, err := PolicyByName(bad); err == nil {
			t.Errorf("PolicyByName(%q) should fail", bad)
		}
	}
}

// TestJobJSONCarriesOffLadderStatic pins the structural wire form: a
// hand-assembled static policy outside the registry ladder (whose
// rendered name resolves to nothing) still survives the Job round trip.
func TestJobJSONCarriesOffLadderStatic(t *testing.T) {
	odd := PolicyFeatures{Enable888: true, UseConfidence: true, EnableLR: true} // LR without BR
	if _, err := PolicyByName(odd.Name()); err == nil {
		t.Fatalf("precondition: %q should not resolve (pick a different off-ladder combo)", odd.Name())
	}
	in := Job{Policy: odd, Workload: mustWorkload(t, "gcc"), N: 5_000}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Job
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("off-ladder static job failed to decode: %v", err)
	}
	if out.Policy != Policy(odd) {
		t.Errorf("off-ladder policy drifted: %+v", out.Policy)
	}
}

// TestJobJSONCarriesEveryPolicy encodes and decodes a Job per advertised
// policy: the wire form must reconstruct the policy exactly (by name),
// including the parameterized dynamic selectors.
func TestJobJSONCarriesEveryPolicy(t *testing.T) {
	w := mustWorkload(t, "gcc")
	for _, name := range PolicyNames() {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatalf("PolicyByName(%q): %v", name, err)
		}
		in := Job{Policy: p, Workload: w, N: 10_000}
		data, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("marshal job with policy %q: %v", name, err)
		}
		var out Job
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("unmarshal job with policy %q: %v", name, err)
		}
		if out.Policy == nil || out.Policy.Name() != name {
			t.Errorf("job policy %q decoded as %v", name, out.Policy)
		}
		if f, ok := p.(PolicyFeatures); ok && out.Policy != Policy(f) {
			t.Errorf("static job policy %q did not round-trip by value", name)
		}
		if out.Workload.Name != w.Name || out.N != in.N {
			t.Errorf("job fields drifted for policy %q: %+v", name, out)
		}
	}
}
