package repro

import (
	"os"
	"path/filepath"
	"testing"
)

func TestPublicAPIQuickstart(t *testing.T) {
	w, err := WorkloadByName("crafty")
	if err != nil {
		t.Fatal(err)
	}
	base := Run(BaselineConfig(), PolicyBaseline(), w, 30000)
	full := Run(HelperConfig(), PolicyFull(), w, 30000)
	if base.Metrics.IPC() <= 0 || full.Metrics.IPC() <= 0 {
		t.Fatal("runs must produce IPC")
	}
	if SpeedupOf(full, base) <= -0.5 {
		t.Errorf("implausible slowdown: %.2f", SpeedupOf(full, base))
	}
}

func TestWorkloadByNameErrors(t *testing.T) {
	if _, err := WorkloadByName("nosuch"); err == nil {
		t.Error("unknown workload must error")
	}
	if _, err := WorkloadByName("gcc"); err != nil {
		t.Errorf("gcc lookup failed: %v", err)
	}
}

func TestPolicyLadderExported(t *testing.T) {
	if len(PolicyLadder()) != 7 {
		t.Error("ladder must have 7 rungs")
	}
	if len(SpecInt2000()) != 12 {
		t.Error("12 SPEC workloads expected")
	}
	if len(Suite412()) != 412 {
		t.Error("412-trace suite expected")
	}
}

func TestCustomWorkload(t *testing.T) {
	p := SpecInt2000()[0].Params
	w, err := CustomWorkload("mine", p)
	if err != nil || w.Name != "mine" {
		t.Fatalf("custom workload: %v", err)
	}
	bad := p
	bad.Segments = 0
	if _, err := CustomWorkload("bad", bad); err == nil {
		t.Error("invalid params must error")
	}
}

func TestAnalyzeWidth(t *testing.T) {
	w, _ := WorkloadByName("gzip")
	study := AnalyzeWidth(w, 20000)
	if study.NarrowDep.Frac <= 0 || study.Distance.Average() <= 0 {
		t.Error("width study must measure something")
	}
}

func TestPowerAPI(t *testing.T) {
	w, _ := WorkloadByName("gap")
	base := Run(BaselineConfig(), PolicyBaseline(), w, 20000)
	full := Run(HelperConfig(), PolicyFull(), w, 20000)
	pb := EstimatePower(BaselineConfig(), base)
	pf := EstimatePower(HelperConfig(), full)
	if pb.EnergyNJ <= 0 || pf.EnergyNJ <= 0 {
		t.Fatal("power estimates must be positive")
	}
	_ = ED2Gain(pf, pb) // sign depends on the app; just exercise it
}

func TestTraceFileRoundTripAPI(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gzip.trace")
	w, _ := WorkloadByName("gzip")
	if err := WriteTraceFile(path, w, 5000); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil || info.Size() == 0 {
		t.Fatal("trace file missing")
	}
	r, err := RunTraceFile(HelperConfig(), Policy888(), path, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics.Committed < 8000 {
		t.Errorf("trace replay committed %d", r.Metrics.Committed)
	}
	if _, err := RunTraceFile(HelperConfig(), Policy888(), filepath.Join(dir, "absent"), 10); err == nil {
		t.Error("missing file must error")
	}
}

func TestRecordTrace(t *testing.T) {
	w, _ := WorkloadByName("vpr")
	uops := RecordTrace(w, 100)
	if len(uops) != 100 || uops[99].Seq != 99 {
		t.Error("record wrong")
	}
}
