// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments                  # everything at the default scale
//	experiments -run fig6,fig14  # selected experiments
//	experiments -spec-uops 500000 -suite-uops 60000
//	experiments -csv             # machine-readable output
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	var (
		run       = flag.String("run", "all", "comma list: fig1,fig5,fig6,fig7,fig8,fig9,fig11,fig12,fig13,cp,ir,ed2,ladder,dynamic,table1,table2,fig14")
		specUops  = flag.Uint64("spec-uops", 150_000, "measured uops per SPEC trace")
		suiteUops = flag.Uint64("suite-uops", 30_000, "measured uops per suite trace (fig14)")
		warmup    = flag.Uint64("warmup", 30_000, "warmup uops per run")
		workers   = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	o := experiments.Options{
		SpecUops:  *specUops,
		SuiteUops: *suiteUops,
		Warmup:    *warmup,
		Workers:   *workers,
	}

	want := map[string]bool{}
	for _, k := range strings.Split(*run, ",") {
		want[strings.TrimSpace(strings.ToLower(k))] = true
	}
	all := want["all"]
	sel := func(k string) bool { return all || want[k] }

	emit := func(t *report.Table) {
		if *csv {
			fmt.Println(t.CSV())
		} else {
			fmt.Println(t.Render())
		}
	}
	emitErr := func(t *report.Table, err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		emit(t)
	}

	if sel("table1") {
		emit(experiments.Table1())
	}
	if sel("table2") {
		emit(experiments.Table2())
	}
	if sel("fig1") {
		emitErr(experiments.Fig1Ctx(ctx, o))
	}
	if sel("fig11") {
		emitErr(experiments.Fig11Ctx(ctx, o))
	}
	if sel("fig13") {
		emitErr(experiments.Fig13Ctx(ctx, o))
	}

	needSweep := false
	for _, k := range []string{"fig5", "fig6", "fig7", "fig8", "fig9", "fig12", "cp", "ir", "ed2", "ladder", "dynamic"} {
		if sel(k) {
			needSweep = true
		}
	}
	if needSweep {
		fmt.Fprintf(os.Stderr, "running the SPEC policy-ladder sweep (%d uops × 12 apps × 9 configurations)...\n", o.SpecUops)
		s, err := experiments.RunSpecSweepCtx(ctx, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if sel("fig5") {
			emit(experiments.Fig5(s))
		}
		if sel("fig6") {
			emit(experiments.Fig6(s))
		}
		if sel("fig7") {
			emit(experiments.Fig7(s))
		}
		if sel("fig8") {
			emit(experiments.Fig8(s))
		}
		if sel("fig9") {
			emit(experiments.Fig9(s))
		}
		if sel("fig12") {
			emit(experiments.Fig12(s))
		}
		if sel("cp") {
			emit(experiments.CPStudy(s))
		}
		if sel("ir") {
			emit(experiments.IRStudy(s))
		}
		if sel("ed2") {
			emit(experiments.EnergyDelay(s))
		}
		if sel("ladder") {
			emit(experiments.SpecLadder(s))
		}
		if sel("dynamic") {
			fmt.Fprintf(os.Stderr, "running the dynamic-policy sweep (%d uops × 12 apps × 4 selectors)...\n", o.SpecUops)
			d, err := experiments.RunDynamicSweepCtx(ctx, o)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			emit(experiments.FigDynamic(s, d))
			emit(experiments.FigDynamicED2(s, d))
			emit(experiments.DynamicUsage(d))
		}
	}

	if sel("fig14") {
		fmt.Fprintf(os.Stderr, "running the 412-trace suite sweep (%d uops × 412 × 2)...\n", o.SuiteUops)
		table, series, err := experiments.Fig14Ctx(ctx, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		emit(table)
		if !*csv {
			fmt.Println(series.Curve(72, 14))
		}
	}
}
