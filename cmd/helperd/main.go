// Command helperd operates the distributed simulation grid: one process
// per role, composable into a cluster.
//
//	helperd serve  -addr :8321                 # the job server
//	helperd work   -server :8321 -workers 4    # a simulation worker (run N of these)
//	helperd submit -server :8321 -jobs jobs.json   # stream a batch through the grid
//	helperd metrics -server :8321              # counter snapshot (cache hits, leases, ...)
//
// The server shards submitted batches into a priority work queue, leases
// jobs to polling workers (a worker that stops heartbeating loses its
// leases and the jobs are reassigned), streams results back as NDJSON,
// and serves repeated jobs from a content-addressed result store keyed
// by the canonical Job hash — a sweep rerun costs nothing but the cache
// lookups. `sweep -grid` drives the same fabric for the paper studies.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro"
	"repro/internal/grid"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var err error
	switch os.Args[1] {
	case "serve":
		err = serveCmd(ctx, os.Args[2:])
	case "work":
		err = workCmd(ctx, os.Args[2:])
	case "submit":
		err = submitCmd(ctx, os.Args[2:])
	case "metrics":
		err = metricsCmd(ctx, os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "helperd: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "helperd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: helperd <serve|work|submit|metrics> [flags]

  serve   -addr :8321 [-lease 5s] [-max-attempts 5] [-store-dir dir] [-store-max-bytes 0]
  work    -server :8321 [-workers 0] [-name ""] [-health ""]
  submit  -server :8321 [-jobs file|-] [-priority 0] [-warmup-frac 0.2] [-progress]
  metrics -server :8321
`)
}

// serveCmd runs the grid job server until interrupted.
func serveCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("helperd serve", flag.ExitOnError)
	addr := fs.String("addr", ":8321", "listen address")
	lease := fs.Duration("lease", 5*time.Second, "lease TTL (heartbeat deadline before reassignment)")
	maxAttempts := fs.Int("max-attempts", 5, "lease attempts per job before it is failed")
	storeDir := fs.String("store-dir", "", "directory for the on-disk result store (empty = in-memory; a restart on the same dir keeps the cache)")
	storeMax := fs.Int64("store-max-bytes", 0, "byte cap for -store-dir, LRU-evicted (0 = unbounded)")
	fs.Parse(args)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	opts := []grid.ServerOption{grid.WithLeaseTTL(*lease), grid.WithMaxAttempts(*maxAttempts)}
	if *storeDir != "" {
		st, err := grid.OpenDiskStore(*storeDir, grid.WithMaxBytes(*storeMax))
		if err != nil {
			return err
		}
		defer st.Close()
		entries, _, _ := st.Stats()
		fmt.Fprintf(os.Stderr, "helperd: disk store %s: %d results recovered\n", *storeDir, entries)
		opts = append(opts, grid.WithStorage(st))
	}
	srv := grid.NewServer(opts...)
	defer srv.Close()
	hs := &http.Server{Handler: srv}
	fmt.Fprintf(os.Stderr, "helperd: serving grid on %s\n", ln.Addr())
	go func() {
		<-ctx.Done()
		hs.Close()
	}()
	if err := hs.Serve(ln); err != http.ErrServerClosed {
		return err
	}
	return nil
}

// workCmd runs one worker process against a grid server.
func workCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("helperd work", flag.ExitOnError)
	server := fs.String("server", ":8321", "job server address")
	workers := fs.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS); also the reported capacity")
	name := fs.String("name", "", "worker name (default host-pid)")
	health := fs.String("health", "", "optional listen address for a /healthz load endpoint")
	fs.Parse(args)

	// The exec runner applies no warmup fraction of its own: wire jobs
	// arrive fully resolved and must run with exactly the warmup they
	// carry, or remote results would drift from local ones. The
	// progress-capable exec reports interval snapshots (uops, IPC, rung,
	// phase) that the worker relays over heartbeats; results stay
	// bit-identical to the plain exec.
	w := &grid.Worker{
		Server:       *server,
		Name:         *name,
		Parallel:     *workers,
		ExecProgress: repro.NewRunner().JobExecProgress(0),
	}
	if *health != "" {
		ln, err := net.Listen("tcp", *health)
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: w.Healthz()}
		go hs.Serve(ln)
		defer hs.Close()
		fmt.Fprintf(os.Stderr, "helperd: worker health on http://%s/healthz\n", ln.Addr())
	}
	fmt.Fprintf(os.Stderr, "helperd: worker pulling from %s\n", grid.BaseURL(*server))
	if err := w.Run(ctx); err != nil && err != context.Canceled {
		return err
	}
	return nil
}

// submitCmd streams a job batch through the grid, printing one NDJSON
// line per result, and exits non-zero if any job failed (the failed
// job's canonical JSON goes to stderr).
func submitCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("helperd submit", flag.ExitOnError)
	server := fs.String("server", ":8321", "job server address")
	jobsPath := fs.String("jobs", "-", "jobs file: a JSON array of jobs or NDJSON, \"-\" for stdin")
	priority := fs.Int("priority", 0, "queue priority (higher runs first)")
	warmupFrac := fs.Float64("warmup-frac", 0.2, "default warmup fraction for jobs without an explicit warmup")
	progress := fs.Bool("progress", false, "stream interval progress lines (uops, IPC, rung, phase) to stderr as jobs run")
	fs.Parse(args)

	jobs, err := readJobs(*jobsPath)
	if err != nil {
		return err
	}
	if len(jobs) == 0 {
		return fmt.Errorf("no jobs in %s", *jobsPath)
	}
	ropts := []repro.Option{
		repro.WithGrid(*server),
		repro.WithGridPriority(*priority),
		repro.WithWarmupFrac(*warmupFrac),
	}
	if *progress {
		ropts = append(ropts, repro.WithGridProgress(func(p repro.JobProgress) {
			pct := 0.0
			if p.Total > 0 {
				pct = 100 * float64(p.Uops) / float64(p.Total)
			}
			fmt.Fprintf(os.Stderr, "helperd: progress job=%d %s %5.1f%% ipc=%.3f rung=%s phase=%d worker=%s\n",
				p.Index, p.Job.Label(), pct, p.IntervalIPC, p.Rung, p.Phase, p.Worker)
		}))
	}
	runner := repro.NewRunner(ropts...)

	type line struct {
		Index  int           `json:"index"`
		Job    string        `json:"job"`
		Result *repro.Result `json:"result,omitempty"`
		Err    string        `json:"error,omitempty"`
	}
	enc := json.NewEncoder(os.Stdout)
	failures := 0
	for jr := range runner.RunBatch(ctx, jobs) {
		l := line{Index: jr.Index, Job: jr.Job.Label()}
		if jr.Err != nil {
			l.Err = jr.Err.Error()
			failures++
			if data, merr := json.Marshal(jr.Job); merr == nil {
				fmt.Fprintf(os.Stderr, "helperd: failed job (canonical JSON): %s\n", data)
			}
		} else {
			res := jr.Result
			l.Result = &res
		}
		enc.Encode(l)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d jobs failed", failures, len(jobs))
	}
	return nil
}

// metricsCmd prints the server's counter snapshot as JSON.
func metricsCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("helperd metrics", flag.ExitOnError)
	server := fs.String("server", ":8321", "job server address")
	fs.Parse(args)
	client := &grid.Client{Server: *server}
	m, err := client.Metrics(ctx)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// readJobs loads a batch description: either one JSON array of jobs or
// NDJSON with one job per line (the shapes Job's decoder accepts,
// including registry-name shorthand).
func readJobs(path string) ([]repro.Job, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if t := bytes.TrimSpace(data); len(t) > 0 && t[0] == '[' {
		var jobs []repro.Job
		if err := json.Unmarshal(data, &jobs); err != nil {
			return nil, fmt.Errorf("decoding jobs array: %w", err)
		}
		return jobs, nil
	}
	var jobs []repro.Job
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var j repro.Job
		if err := json.Unmarshal(line, &j); err != nil {
			return nil, fmt.Errorf("decoding job line %d: %w", len(jobs)+1, err)
		}
		jobs = append(jobs, j)
	}
	return jobs, sc.Err()
}
