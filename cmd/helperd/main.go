// Command helperd operates the distributed simulation grid: one process
// per role, composable into a cluster.
//
//	helperd serve  -addr :8321                 # the job server
//	helperd work   -server :8321 -workers 4    # a simulation worker (run N of these)
//	helperd submit -server :8321 -jobs jobs.json   # stream a batch through the grid
//	helperd metrics -server :8321              # counter snapshot (cache hits, leases, ...)
//	helperd federate -servers a:8321,b:8322    # load snapshot of every federation member
//
// The server shards submitted batches into a priority work queue, leases
// jobs to polling workers (a worker that stops heartbeating loses its
// leases and the jobs are reassigned), streams results back as NDJSON,
// and serves repeated jobs from a content-addressed result store keyed
// by the canonical Job hash — a sweep rerun costs nothing but the cache
// lookups. `sweep -grid` drives the same fabric for the paper studies.
//
// Several servers federate into one tier: each `serve -self URL -peers
// a,b` member gossips membership, advertises stealable queue depth and
// its worst batch ETA, and steals from the member that would otherwise
// finish last. `-store-shard N` turns the members' local stores into
// one sharded cache — every result rendezvous-hashes to N owners, so
// any member answers a rerun from cache and one member's death loses
// nothing. A shared `-peer-secret` authenticates all of that peer
// traffic (HMAC per request); members without the secret are rejected.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/grid"
	"repro/internal/profiling"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var err error
	switch os.Args[1] {
	case "serve":
		err = serveCmd(ctx, os.Args[2:])
	case "work":
		err = workCmd(ctx, os.Args[2:])
	case "submit":
		err = submitCmd(ctx, os.Args[2:])
	case "metrics":
		err = metricsCmd(ctx, os.Args[2:])
	case "trace":
		err = traceCmd(ctx, os.Args[2:])
	case "top":
		err = topCmd(ctx, os.Args[2:])
	case "federate":
		err = federateCmd(ctx, os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "helperd: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "helperd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: helperd <serve|work|submit|metrics|trace|top|federate> [flags]

  serve    -addr :8321 [-lease 5s] [-max-attempts 5] [-store-dir dir] [-store-max-bytes 0]
           [-self URL] [-peers a:8321,b:8321] [-peer-secret s] [-store-remote URL]
           [-store-shard 2] [-tenants spec] [-default-tenant spec] [-max-queue 0]
           [-min-workers 0] [-max-workers 0] [-worker-parallel 0] [-scale-tick 500ms]
           [-log off|error|warn|info|debug] [-trace 4096] [-trace-spill file]
           [-debug-addr ""]
  work     -server :8321 [-workers 0] [-name ""] [-health ""] [-debug-addr ""]
  submit   -server :8321 [-jobs file|-] [-priority 0] [-warmup-frac 0.2] [-progress] [-client ""]
  metrics  -server :8321
  trace    -server :8321 [-check exec|cached|stolen] [-limit 20] [id]
  top      -server :8321 [-interval 1s] [-once]
  federate -servers a:8321,b:8321 [-peer-secret s]

A -tenants spec registers per-client limits, ';'-separated:
  alice,weight=4,rate=50,burst=100;bob,weight=1,jobs=500,bytes=33554432
-default-tenant takes the same key=value list (no leading id) for
clients the spec does not name. -min/max-workers enable the autoscaler:
the server spawns and drains re-exec'd local workers with the queue.

trace with no id lists recent traces; with a trace/task/batch id it
reconstructs the span tree, following steal hops across federation
peers. -debug-addr serves net/http/pprof on its own listener (off by
default). The server also serves a live dashboard on /dashboard.
`)
}

// serveCmd runs the grid job server until interrupted. With -peers or
// -self it becomes a federation member: the Server is wrapped in a
// grid.Federation that gossips membership and steals work for the local
// worker pool, and -store-remote points the member's result store at a
// peer so the whole tier shares one cache.
func serveCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("helperd serve", flag.ExitOnError)
	addr := fs.String("addr", ":8321", "listen address")
	lease := fs.Duration("lease", 5*time.Second, "lease TTL (heartbeat deadline before reassignment)")
	maxAttempts := fs.Int("max-attempts", 5, "lease attempts per job before it is failed")
	storeDir := fs.String("store-dir", "", "directory for the on-disk result store (empty = in-memory; a restart on the same dir keeps the cache)")
	storeMax := fs.Int64("store-max-bytes", 0, "byte cap for -store-dir, LRU-evicted (0 = unbounded)")
	storeRemote := fs.String("store-remote", "", "serve results from a peer's store over HTTP (the shared federation cache; mutually exclusive with -store-dir)")
	storeShard := fs.Int("store-shard", 0, "replication factor for the sharded federation store (0 = off; rendezvous-hashes results over live members, requires -self/-peers)")
	self := fs.String("self", "", "advertised base URL for federation (default: derived from -addr; set it when peers reach this member on another address)")
	peers := fs.String("peers", "", "comma-separated peer servers; federates this member with them")
	peerSecret := fs.String("peer-secret", "", "shared secret authenticating the peer seam (HMAC on announce/status/steal/store; empty = open)")
	tenants := fs.String("tenants", "", "per-tenant limits spec: id,key=value,...;id,... (keys: weight rate burst jobs bytes)")
	defaultTenant := fs.String("default-tenant", "", "limits for tenants the -tenants spec does not name (key=value,... without an id)")
	maxQueue := fs.Int("max-queue", 0, "server-wide queue bound; batches past it get 503 + Retry-After (0 = unbounded)")
	minWorkers := fs.Int("min-workers", 0, "autoscaler floor: local workers kept alive (0 with -max-workers 0 disables autoscaling)")
	maxWorkers := fs.Int("max-workers", 0, "autoscaler ceiling: most local workers spawned under load")
	workerPar := fs.Int("worker-parallel", 0, "parallel simulations per spawned worker (0 = GOMAXPROCS)")
	scaleTick := fs.Duration("scale-tick", 500*time.Millisecond, "autoscaler evaluation period")
	logLevel := fs.String("log", "", "structured log level: off (default), error, warn, info, debug")
	traceCap := fs.Int("trace", 0, "trace ring capacity in events (0 = default 4096, negative = disable tracing)")
	traceSpill := fs.String("trace-spill", "", "append every trace event to this NDJSON file (operators point it next to -store-dir)")
	debugAddr := fs.String("debug-addr", "", "optional listen address for net/http/pprof (off by default)")
	fs.Parse(args)

	if *storeDir != "" && *storeRemote != "" {
		return fmt.Errorf("-store-dir and -store-remote are mutually exclusive")
	}
	if *storeShard > 0 {
		if *storeRemote != "" {
			return fmt.Errorf("-store-shard and -store-remote are mutually exclusive (the shard tier replaces the single-owner remote store)")
		}
		if *peers == "" && *self == "" {
			return fmt.Errorf("-store-shard needs a federation (-peers and/or -self)")
		}
	}
	logger, err := buildLogger(*logLevel)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *debugAddr != "" {
		bound, stopDebug, err := profiling.ServeDebug(*debugAddr)
		if err != nil {
			return err
		}
		defer stopDebug()
		fmt.Fprintf(os.Stderr, "helperd: pprof on http://%s/debug/pprof/\n", bound)
	}
	opts := []grid.ServerOption{grid.WithLeaseTTL(*lease), grid.WithMaxAttempts(*maxAttempts),
		grid.WithTrace(*traceCap)}
	if *traceSpill != "" {
		f, err := os.OpenFile(*traceSpill, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("opening -trace-spill: %w", err)
		}
		defer f.Close()
		opts = append(opts, grid.WithTraceSpill(f))
		fmt.Fprintf(os.Stderr, "helperd: trace spill %s\n", *traceSpill)
	}
	if logger != nil {
		opts = append(opts, grid.WithLogger(logger))
	}
	if *maxQueue > 0 {
		opts = append(opts, grid.WithMaxQueue(*maxQueue))
	}
	if *tenants != "" {
		limits, err := grid.ParseTenantSpec(*tenants)
		if err != nil {
			return err
		}
		for id, l := range limits {
			opts = append(opts, grid.WithTenant(id, l))
		}
		fmt.Fprintf(os.Stderr, "helperd: %d tenant limit(s) registered\n", len(limits))
	}
	if *defaultTenant != "" {
		// The shared parser wants a leading tenant id; give the
		// defaults spec a synthetic one.
		limits, err := grid.ParseTenantSpec("_default," + *defaultTenant)
		if err != nil {
			return err
		}
		opts = append(opts, grid.WithTenantDefaults(limits["_default"]))
	}
	adv := *self
	if adv == "" {
		adv = advertiseURL(ln.Addr())
	}
	var local grid.Storage
	if *storeDir != "" {
		st, err := grid.OpenDiskStore(*storeDir, grid.WithMaxBytes(*storeMax))
		if err != nil {
			return err
		}
		defer st.Close()
		entries, _, _ := st.Stats()
		fmt.Fprintf(os.Stderr, "helperd: disk store %s: %d results recovered\n", *storeDir, entries)
		local = st
	}
	if *storeRemote != "" {
		rs := grid.NewRemoteStore(*storeRemote, grid.WithRemoteSecret(*peerSecret))
		defer rs.Close()
		fmt.Fprintf(os.Stderr, "helperd: remote store %s\n", rs.Remote())
		local = rs
	}
	var shard *grid.ShardedStore
	if *storeShard > 0 {
		if local == nil {
			local = grid.NewStore()
		}
		shard = grid.NewShardedStore(local, adv,
			grid.WithShardReplication(*storeShard), grid.WithShardSecret(*peerSecret))
		defer shard.Close()
		fmt.Fprintf(os.Stderr, "helperd: sharded store, replication %d\n", *storeShard)
		local = shard
	}
	if local != nil {
		opts = append(opts, grid.WithStorage(local))
	}
	if *peerSecret != "" {
		opts = append(opts, grid.WithPeerSecret(*peerSecret))
	}
	srv := grid.NewServer(opts...)
	defer srv.Close()

	// The Federation wraps the Server's handler; its Close is deferred
	// after srv's, so it runs first — and the http.Server's Close (below)
	// has already cut any loopback batch streams it would wait on.
	var handler http.Handler = srv
	if *peers != "" || *self != "" {
		fed := grid.NewFederation(srv, adv, splitList(*peers))
		defer fed.Close()
		if shard != nil {
			shard.SetMembership(fed.Peers)
		}
		handler = fed
		fmt.Fprintf(os.Stderr, "helperd: federation member %s, seed peers %v\n", fed.Self(), fed.Peers())
	}
	if *minWorkers > 0 || *maxWorkers > 0 {
		exe, err := os.Executable()
		if err != nil {
			return err
		}
		serverURL := advertiseURL(ln.Addr())
		as, err := grid.NewAutoscaler(srv, grid.AutoscalerConfig{
			Min:  *minWorkers,
			Max:  *maxWorkers,
			Tick: *scaleTick,
			Log:  logger,
			Spawn: func(id int) (grid.WorkerHandle, error) {
				return spawnWorker(exe, serverURL, id, *workerPar)
			},
		})
		if err != nil {
			return err
		}
		defer as.Close()
		fmt.Fprintf(os.Stderr, "helperd: autoscaling %d..%d local workers (tick %s)\n",
			*minWorkers, max(*minWorkers, *maxWorkers), *scaleTick)
	}
	hs := &http.Server{Handler: handler}
	fmt.Fprintf(os.Stderr, "helperd: serving grid on %s\n", ln.Addr())
	go func() {
		<-ctx.Done()
		hs.Close()
	}()
	if err := hs.Serve(ln); err != http.ErrServerClosed {
		return err
	}
	return nil
}

// buildLogger maps the -log flag onto a stderr slog.Logger, nil for
// off.
func buildLogger(level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "off":
		return nil, nil
	case "error":
		lv = slog.LevelError
	case "warn":
		lv = slog.LevelWarn
	case "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	default:
		return nil, fmt.Errorf("unknown -log level %q (want off|error|warn|info|debug)", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv})), nil
}

// procHandle adapts a re-exec'd `helperd work` process to the
// autoscaler's WorkerHandle: Drain is SIGTERM (the worker finishes its
// in-flight leases and exits), Kill is SIGKILL.
type procHandle struct {
	cmd  *exec.Cmd
	done chan struct{}
}

func (p *procHandle) Drain() { p.cmd.Process.Signal(syscall.SIGTERM) }
func (p *procHandle) Kill()  { p.cmd.Process.Kill() }

func (p *procHandle) Done() <-chan struct{} { return p.done }

// spawnWorker launches one supervised `helperd work` process against
// the server, named auto<N> so operators can tell autoscaled workers
// from hand-started ones in /metrics.
func spawnWorker(exe, serverURL string, id, parallel int) (grid.WorkerHandle, error) {
	args := []string{"work", "-server", serverURL, "-name", fmt.Sprintf("auto%d", id)}
	if parallel > 0 {
		args = append(args, "-workers", fmt.Sprint(parallel))
	}
	cmd := exec.Command(exe, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	done := make(chan struct{})
	go func() {
		cmd.Wait()
		close(done)
	}()
	return &procHandle{cmd: cmd, done: done}, nil
}

// advertiseURL derives the federation base URL from the listen address:
// an explicit host is advertised as-is; a wildcard listen falls back to
// loopback (fine for single-host federations — use -self otherwise).
func advertiseURL(a net.Addr) string {
	host := "127.0.0.1"
	port := ""
	if ta, ok := a.(*net.TCPAddr); ok {
		port = fmt.Sprint(ta.Port)
		if len(ta.IP) > 0 && !ta.IP.IsUnspecified() {
			host = ta.IP.String()
		}
	}
	return "http://" + net.JoinHostPort(host, port)
}

// splitList parses a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// workCmd runs one worker process against a grid server.
func workCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("helperd work", flag.ExitOnError)
	server := fs.String("server", ":8321", "job server address")
	workers := fs.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS); also the reported capacity")
	name := fs.String("name", "", "worker name (default host-pid)")
	health := fs.String("health", "", "optional listen address for a /healthz load endpoint")
	debugAddr := fs.String("debug-addr", "", "optional listen address for net/http/pprof (off by default)")
	fs.Parse(args)

	if *debugAddr != "" {
		bound, stopDebug, err := profiling.ServeDebug(*debugAddr)
		if err != nil {
			return err
		}
		defer stopDebug()
		fmt.Fprintf(os.Stderr, "helperd: pprof on http://%s/debug/pprof/\n", bound)
	}

	// The exec runner applies no warmup fraction of its own: wire jobs
	// arrive fully resolved and must run with exactly the warmup they
	// carry, or remote results would drift from local ones. The
	// progress-capable exec reports interval snapshots (uops, IPC, rung,
	// phase) that the worker relays over heartbeats; results stay
	// bit-identical to the plain exec.
	w := &grid.Worker{
		Server:       *server,
		Name:         *name,
		Parallel:     *workers,
		ExecProgress: repro.NewRunner().JobExecProgress(0),
	}
	// SIGTERM is the graceful-drain signal (the autoscaler's reap path):
	// stop leasing, finish in-flight simulations, post the completions,
	// exit 0. Interrupt (via ctx) stays the hard stop.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM)
	defer signal.Stop(sigs)
	go func() {
		select {
		case <-sigs:
			fmt.Fprintln(os.Stderr, "helperd: worker draining (SIGTERM)")
			w.Drain()
		case <-ctx.Done():
		}
	}()
	if *health != "" {
		ln, err := net.Listen("tcp", *health)
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: w.Healthz()}
		go hs.Serve(ln)
		defer hs.Close()
		fmt.Fprintf(os.Stderr, "helperd: worker health on http://%s/healthz\n", ln.Addr())
	}
	fmt.Fprintf(os.Stderr, "helperd: worker pulling from %s\n", grid.BaseURL(*server))
	if err := w.Run(ctx); err != nil && err != context.Canceled {
		return err
	}
	return nil
}

// submitCmd streams a job batch through the grid, printing one NDJSON
// line per result, and exits non-zero if any job failed (the failed
// job's canonical JSON goes to stderr).
func submitCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("helperd submit", flag.ExitOnError)
	server := fs.String("server", ":8321", "job server address")
	jobsPath := fs.String("jobs", "-", "jobs file: a JSON array of jobs or NDJSON, \"-\" for stdin")
	priority := fs.Int("priority", 0, "queue priority (higher runs first)")
	warmupFrac := fs.Float64("warmup-frac", 0.2, "default warmup fraction for jobs without an explicit warmup")
	progress := fs.Bool("progress", false, "stream interval progress lines (uops, IPC, rung, phase) to stderr as jobs run")
	client := fs.String("client", "", "tenant identity (X-Grid-Client) this batch submits as")
	fs.Parse(args)

	jobs, err := readJobs(*jobsPath)
	if err != nil {
		return err
	}
	if len(jobs) == 0 {
		return fmt.Errorf("no jobs in %s", *jobsPath)
	}
	ropts := []repro.Option{
		repro.WithGrid(*server),
		repro.WithGridPriority(*priority),
		repro.WithWarmupFrac(*warmupFrac),
	}
	if *client != "" {
		ropts = append(ropts, repro.WithGridClientID(*client))
	}
	if *progress {
		ropts = append(ropts, repro.WithGridProgress(func(p repro.JobProgress) {
			pct := 0.0
			if p.Total > 0 {
				pct = 100 * float64(p.Uops) / float64(p.Total)
			}
			fmt.Fprintf(os.Stderr, "helperd: progress job=%d %s %5.1f%% ipc=%.3f rung=%s phase=%d worker=%s\n",
				p.Index, p.Job.Label(), pct, p.IntervalIPC, p.Rung, p.Phase, p.Worker)
		}))
	}
	runner := repro.NewRunner(ropts...)

	type line struct {
		Index  int           `json:"index"`
		Job    string        `json:"job"`
		Result *repro.Result `json:"result,omitempty"`
		Err    string        `json:"error,omitempty"`
	}
	enc := json.NewEncoder(os.Stdout)
	failures := 0
	for jr := range runner.RunBatch(ctx, jobs) {
		l := line{Index: jr.Index, Job: jr.Job.Label()}
		if jr.Err != nil {
			l.Err = jr.Err.Error()
			failures++
			if data, merr := json.Marshal(jr.Job); merr == nil {
				fmt.Fprintf(os.Stderr, "helperd: failed job (canonical JSON): %s\n", data)
			}
		} else {
			res := jr.Result
			l.Result = &res
		}
		enc.Encode(l)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d jobs failed", failures, len(jobs))
	}
	return nil
}

// metricsCmd prints the server's counter snapshot as JSON, with a
// one-line federation digest (steals, affinity, speculation) on stderr
// when the member has federated.
func metricsCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("helperd metrics", flag.ExitOnError)
	server := fs.String("server", ":8321", "job server address")
	fs.Parse(args)
	client := &grid.Client{Server: *server}
	m, err := client.Metrics(ctx)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return err
	}
	if m.Peers > 0 || m.StealsOut > 0 || m.StealsIn > 0 {
		fmt.Fprintf(os.Stderr, "helperd: federation: %d peers, %d steals out, %d in, affinity %d/%d, %d speculated\n",
			m.Peers, m.StealsOut, m.StealsIn, m.AffinityHits, m.AffinityHits+m.AffinityMisses, m.Speculated)
	}
	for _, t := range m.Tenants {
		fmt.Fprintf(os.Stderr, "helperd: tenant %-12s weight=%g admitted=%d rejected=%d(rate)+%d(quota) queued=%d running=%d completed=%d failed=%d pending_bytes=%d\n",
			t.ID, t.Weight, t.Admitted, t.RejectedRate, t.RejectedQuota,
			t.Queued, t.Running, t.Completed, t.Failed, t.PendingBytes)
	}
	if lw := m.LeaseWaits; lw != nil {
		fmt.Fprintf(os.Stderr, "helperd: lease waits: %d grants, mean %.1fms, max %.1fms\n",
			lw.Count, lw.MeanMS, lw.MaxMS)
	}
	if a := m.Autoscaler; a != nil {
		fmt.Fprintf(os.Stderr, "helperd: autoscaler: %d workers (target %d), %d ups, %d downs\n",
			a.Workers, a.Target, a.ScaleUps, a.ScaleDowns)
	}
	return nil
}

// traceCmd reconstructs the span tree of one traced job and prints it
// with per-event offsets and a span-duration digest, following steal
// hops to the federation peers named by stolen events. Without an id it
// lists the server's most recently touched traces. -check validates the
// merged tree as a local execution, a cache hit, or a stolen run, and
// fails the command when the tree does not match.
func traceCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("helperd trace", flag.ExitOnError)
	server := fs.String("server", ":8321", "job server address")
	check := fs.String("check", "", "validate the span tree as exec|cached|stolen (non-zero exit on mismatch)")
	limit := fs.Int("limit", 20, "most recent traces listed when no id is given")
	fs.Parse(args)
	client := &grid.Client{Server: *server}

	id := fs.Arg(0)
	if id == "" {
		traces, err := client.TraceList(ctx, *limit)
		if err != nil {
			return err
		}
		if len(traces) == 0 {
			fmt.Println("helperd: no traces recorded")
			return nil
		}
		for _, t := range traces {
			span := time.Duration(t.LastNS - t.FirstNS)
			fmt.Printf("%-71s %3d events %12s  %s\n",
				t.Trace, t.Events, span.Round(time.Microsecond), strings.Join(t.Stages, ","))
		}
		return nil
	}

	events, sources, err := collectTrace(ctx, grid.BaseURL(*server), id)
	if err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("no trace events for %q (tracing disabled, or the ring has rotated past it)", id)
	}
	fmt.Printf("trace %s — %d event(s) from %d server(s)\n", events[0].Trace, len(events), sources)
	base := events[0].TimeNS
	for _, ev := range events {
		off := float64(ev.TimeNS-base) / 1e6
		fmt.Printf("  %+12.3fms  %-10s %s\n", off, ev.Stage, traceFields(ev))
	}
	d := grid.Durations(events)
	fmt.Printf("spans: admission=%s queue=%s first_progress=%s exec=%s e2e=%s\n",
		fmtSpan(d.Admission), fmtSpan(d.Queue), fmtSpan(d.FirstProgress),
		fmtSpan(d.Exec), fmtSpan(d.EndToEnd))
	if *check != "" {
		if err := grid.ValidateTrace(events, *check); err != nil {
			return err
		}
		fmt.Printf("helperd: trace validates as %s\n", *check)
	}
	return nil
}

// collectTrace merges the trace's events across the federation: fetch
// from origin, stamp each event's Source, then follow every peer a
// stolen event names (the victim from a steal-in, the thief from a
// steal-out) and fetch the same trace ID there — the content hash is
// identical on both sides of a hop, so it is the cross-server join key.
// It reports the merged, time-ordered events and how many servers
// contributed.
func collectTrace(ctx context.Context, origin, id string) ([]grid.TraceEvent, int, error) {
	evs, err := (&grid.Client{Server: origin}).TraceEvents(ctx, id)
	if err != nil {
		return nil, 0, err
	}
	hashes := map[string]bool{}
	for i := range evs {
		evs[i].Source = origin
		if evs[i].Trace != "" {
			hashes[evs[i].Trace] = true
		}
	}
	merged := evs
	visited := map[string]bool{origin: true}
	queue := stealPeers(evs)
	sources := 1
	for len(queue) > 0 {
		peer := queue[0]
		queue = queue[1:]
		if peer == "" || visited[peer] {
			continue
		}
		visited[peer] = true
		c := &grid.Client{Server: peer}
		contributed := false
		for h := range hashes {
			pevs, err := c.TraceEvents(ctx, h)
			if err != nil {
				fmt.Fprintf(os.Stderr, "helperd: peer %s unreachable, tree may be partial: %v\n", peer, err)
				break
			}
			for i := range pevs {
				pevs[i].Source = peer
			}
			if len(pevs) > 0 {
				contributed = true
			}
			merged = append(merged, pevs...)
			queue = append(queue, stealPeers(pevs)...)
		}
		if contributed {
			sources++
		}
	}
	grid.SortEvents(merged)
	return merged, sources, nil
}

// stealPeers extracts the peer URLs named by a event set's steal hops.
func stealPeers(evs []grid.TraceEvent) []string {
	var out []string
	for _, ev := range evs {
		if ev.Stage == grid.StageStolen && ev.Peer != "" {
			out = append(out, grid.BaseURL(ev.Peer))
		}
	}
	return out
}

// traceFields renders one event's identifying fields for the span tree.
func traceFields(ev grid.TraceEvent) string {
	var parts []string
	add := func(k, v string) {
		if v != "" {
			parts = append(parts, k+"="+v)
		}
	}
	add("task", ev.Task)
	add("batch", ev.Batch)
	add("tenant", ev.Tenant)
	add("worker", ev.Worker)
	if ev.Attempt > 0 {
		add("attempt", fmt.Sprint(ev.Attempt))
	}
	add("peer", ev.Peer)
	if ev.Hop > 0 {
		add("hop", fmt.Sprint(ev.Hop))
	}
	if ev.Total > 0 {
		add("uops", fmt.Sprintf("%d/%d", ev.Uops, ev.Total))
	}
	add("detail", ev.Detail)
	add("@", ev.Source)
	return strings.Join(parts, " ")
}

// fmtSpan renders one reconstructed span, "-" for unobserved endpoints.
func fmtSpan(d time.Duration) string {
	if d < 0 {
		return "-"
	}
	return fmt.Sprintf("%.3fms", float64(d)/1e6)
}

// topCmd renders a live text dashboard of one server — the terminal
// sibling of /dashboard: fleet counters, tenant shares with stage
// latencies, batch ETAs and in-flight progress bars, refreshed in
// place every -interval. -once prints a single snapshot (scripts and
// tests use it).
func topCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("helperd top", flag.ExitOnError)
	server := fs.String("server", ":8321", "job server address")
	interval := fs.Duration("interval", time.Second, "refresh period")
	once := fs.Bool("once", false, "print one snapshot and exit (no screen clearing)")
	fs.Parse(args)
	client := &grid.Client{Server: *server}
	for {
		m, err := client.Metrics(ctx)
		if err != nil {
			return err
		}
		var b strings.Builder
		renderTop(&b, grid.BaseURL(*server), &m)
		if *once {
			os.Stdout.WriteString(b.String())
			return nil
		}
		// ANSI home+clear keeps the refresh flicker-free on a dumb
		// terminal without any curses dependency.
		os.Stdout.WriteString("\033[H\033[2J" + b.String())
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(*interval):
		}
	}
}

// renderTop formats one metrics snapshot as the top screen.
func renderTop(b *strings.Builder, server string, m *grid.Metrics) {
	fmt.Fprintf(b, "helperd top — %s — %s\n\n", server, time.Now().Format("15:04:05"))
	fmt.Fprintf(b, "fleet    workers=%d peers=%d queued=%d leased=%d store=%d\n",
		m.Workers, m.Peers, m.QueueDepth, m.Leased, m.StoreEntries)
	fmt.Fprintf(b, "jobs     submitted=%d completed=%d failed=%d cache_hits=%d coalesced=%d\n",
		m.Submitted, m.Completed, m.Failed, m.CacheHits, m.Coalesced)
	fmt.Fprintf(b, "leases   granted=%d empty_polls=%d reassigned=%d speculated=%d steals=%d out/%d in\n",
		m.LeasesGranted, m.LeasePollEmpty, m.Reassigned, m.Speculated, m.StealsOut, m.StealsIn)
	if t := m.Trace; t != nil {
		fmt.Fprintf(b, "trace    ring %d/%d events (lifetime %d, spill dropped %d)\n",
			t.Events, t.Capacity, t.Total, t.SpillDropped)
	}
	if a := m.Autoscaler; a != nil {
		fmt.Fprintf(b, "scaler   %d workers (target %d), %d ups, %d downs\n",
			a.Workers, a.Target, a.ScaleUps, a.ScaleDowns)
	}
	if len(m.Tenants) > 0 {
		fmt.Fprintf(b, "\n%-14s %6s %9s %9s %6s %7s %6s %11s %11s\n",
			"TENANT", "WEIGHT", "ADMITTED", "COMPLETED", "QUEUED", "RUNNING", "FAILED", "EXEC MEAN", "E2E MEAN")
		for _, t := range m.Tenants {
			fmt.Fprintf(b, "%-14s %6g %9d %9d %6d %7d %6d %11s %11s\n",
				t.ID, t.Weight, t.Admitted, t.Completed, t.Queued, t.Running, t.Failed,
				stageMean(t.Stages, "exec"), stageMean(t.Stages, "e2e"))
		}
	}
	if len(m.Batches) > 0 {
		fmt.Fprintf(b, "\n%-14s %8s %7s %8s %10s\n", "BATCH", "PENDING", "QUEUED", "RUNNING", "ETA")
		for _, bt := range m.Batches {
			eta := "-"
			if bt.EtaMS > 0 {
				eta = (time.Duration(bt.EtaMS) * time.Millisecond).Round(time.Millisecond).String()
			}
			fmt.Fprintf(b, "%-14s %8d %7d %8d %10s\n", bt.ID, bt.Pending, bt.Queued, bt.Running, eta)
		}
	}
	if len(m.Running) > 0 {
		fmt.Fprintf(b, "\nIN FLIGHT\n")
		for _, p := range m.Running {
			frac := 0.0
			if p.Total > 0 {
				frac = float64(p.Uops) / float64(p.Total)
			}
			fmt.Fprintf(b, "  %-12s [%s] %5.1f%%  ipc=%.3f rung=%s worker=%s\n",
				p.ID, progressBar(frac, 30), 100*frac, p.IntervalIPC, p.Rung, p.Worker)
		}
	}
}

// stageMean renders a tenant's mean latency for one stage, "-" before
// the first observation.
func stageMean(stages map[string]grid.LatencySummary, stage string) string {
	if s, ok := stages[stage]; ok && s.Count > 0 {
		return fmt.Sprintf("%.1fms", s.MeanMS)
	}
	return "-"
}

// progressBar renders a fixed-width ASCII fill bar.
func progressBar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	fill := int(frac * float64(width))
	return strings.Repeat("=", fill) + strings.Repeat(" ", width-fill)
}

// federateCmd prints one load-snapshot line per federation member: who
// it is, who it knows, and how much work it holds or could give away.
// Unreachable members are reported and skipped; the command fails only
// when nobody answers.
func federateCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("helperd federate", flag.ExitOnError)
	servers := fs.String("servers", ":8321", "comma-separated federation members to query")
	peerSecret := fs.String("peer-secret", "", "shared secret for members serving with -peer-secret")
	fs.Parse(args)
	members := splitList(*servers)
	if len(members) == 0 {
		return fmt.Errorf("no servers given")
	}
	reached := 0
	for _, m := range members {
		client := &grid.Client{Server: m, PeerSecret: *peerSecret}
		st, err := client.PeerStatus(ctx)
		if err != nil {
			fmt.Printf("%-28s unreachable: %v\n", grid.BaseURL(m), err)
			continue
		}
		reached++
		self := st.Self
		if self == "" {
			self = grid.BaseURL(m) + " (unfederated)"
		}
		fmt.Printf("%-28s peers=%d queue=%d stealable=%d leased=%d workers=%d free=%d store=%d steals_out=%d steals_in=%d\n",
			self, len(st.Peers), st.QueueDepth, st.Stealable, st.Leased,
			st.Workers, st.FreeCapacity, st.StoreEntries, st.StealsOut, st.StealsIn)
	}
	if reached == 0 {
		return fmt.Errorf("no federation member reachable")
	}
	return nil
}

// readJobs loads a batch description: either one JSON array of jobs or
// NDJSON with one job per line (the shapes Job's decoder accepts,
// including registry-name shorthand).
func readJobs(path string) ([]repro.Job, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if t := bytes.TrimSpace(data); len(t) > 0 && t[0] == '[' {
		var jobs []repro.Job
		if err := json.Unmarshal(data, &jobs); err != nil {
			return nil, fmt.Errorf("decoding jobs array: %w", err)
		}
		return jobs, nil
	}
	var jobs []repro.Job
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var j repro.Job
		if err := json.Unmarshal(line, &j); err != nil {
			return nil, fmt.Errorf("decoding job line %d: %w", len(jobs)+1, err)
		}
		jobs = append(jobs, j)
	}
	return jobs, sc.Err()
}
