// Command tracegen generates binary uop trace files from the calibrated
// synthetic workload profiles (the stand-in for the paper's proprietary
// IA-32 traces).
//
// Usage:
//
//	tracegen -workload gcc -n 1000000 -o gcc.trace
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		name = flag.String("workload", "gcc", "SPEC Int 2000 benchmark name")
		n    = flag.Int("n", 1_000_000, "uops to record")
		out  = flag.String("o", "", "output file (default <workload>.trace)")
		list = flag.Bool("list", false, "list available workloads and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("SPEC Int 2000 profiles:")
		for _, p := range repro.SpecInt2000() {
			fmt.Printf("  %-8s working set %6d KiB, %d segments\n",
				p.Name, p.Params.WorkingSet>>10, p.Params.Segments)
		}
		suite := repro.Suite412()
		categories := map[string]bool{}
		for _, p := range suite {
			categories[p.Category] = true
		}
		fmt.Printf("suite: %d commercial traces across %d categories (Table 2)\n",
			len(suite), len(categories))
		return
	}

	w, err := repro.WorkloadByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	path := *out
	if path == "" {
		path = w.Name + ".trace"
	}
	if err := repro.WriteTraceFile(path, w, *n); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	info, _ := os.Stat(path)
	fmt.Printf("wrote %d uops of %s to %s (%d bytes)\n", *n, w.Name, path, info.Size())
}
