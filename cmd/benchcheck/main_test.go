package main

import (
	"strings"
	"testing"
)

func pctPtr(v float64) *float64 { return &v }

// bm builds a single-invocation benchmark entry (floor spread unknown).
func bm(name string, min float64) bench {
	return bench{Name: name, NsPerOpMin: min}
}

func mkSummary(over *float64, benches ...bench) summary {
	return summary{
		GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64",
		Benchmarks:          benches,
		PhaseUCBOverheadPct: over,
	}
}

func TestCompareCleanRun(t *testing.T) {
	base := mkSummary(pctPtr(3.0), bm("BenchmarkA", 100), bm("BenchmarkB", 2000))
	fresh := mkSummary(pctPtr(4.2), bm("BenchmarkA", 105), bm("BenchmarkB", 1900))
	failures, _, _ := compare(base, fresh, 10, 5)
	if len(failures) != 0 {
		t.Fatalf("clean run failed the gate: %v", failures)
	}
}

func TestCompareRegression(t *testing.T) {
	base := mkSummary(nil, bm("BenchmarkA", 100))
	fresh := mkSummary(nil, bm("BenchmarkA", 111))
	failures, _, _ := compare(base, fresh, 10, 5)
	if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkA regressed 11.0%") {
		t.Fatalf("11%% regression not caught: %v", failures)
	}
	// Exactly at the gate passes (the gate is strict-greater).
	failures, _, _ = compare(base, mkSummary(nil, bm("BenchmarkA", 110)), 10, 5)
	if len(failures) != 0 {
		t.Fatalf("10%% on a 10%% gate must pass: %v", failures)
	}
}

// TestCompareOverheadBudget pins the scenario from the gate's design
// brief: phase_ucb_overhead_pct creeping to 5.7% against a 5% budget
// must fail loudly, not land silently.
func TestCompareOverheadBudget(t *testing.T) {
	base := mkSummary(pctPtr(4.0), bm("BenchmarkA", 100))
	fresh := mkSummary(pctPtr(5.7), bm("BenchmarkA", 100))
	failures, _, _ := compare(base, fresh, 10, 5)
	if len(failures) != 1 || !strings.Contains(failures[0], "phase_ucb_overhead_pct = 5.70% over its 5% budget") {
		t.Fatalf("over-budget overhead not caught: %v", failures)
	}
}

func TestCompareOverheadVanished(t *testing.T) {
	base := mkSummary(pctPtr(4.0), bm("BenchmarkA", 100))
	fresh := mkSummary(nil, bm("BenchmarkA", 100))
	failures, _, _ := compare(base, fresh, 10, 5)
	if len(failures) != 1 || !strings.Contains(failures[0], "phase_ucb_overhead_pct missing") {
		t.Fatalf("vanished overhead metric not caught: %v", failures)
	}
}

// TestCompareSuiteDrift pins the normalization: a busy host slowing the
// WHOLE suite 15% is machine state and must pass, while one benchmark
// slowing 30% against that same drift is a real regression and must
// still fail.
func TestCompareSuiteDrift(t *testing.T) {
	var baseBench, driftBench, outlierBench []bench
	for i := 0; i < 10; i++ {
		name := "Benchmark" + string(rune('A'+i))
		baseBench = append(baseBench, bm(name, 1000))
		driftBench = append(driftBench, bm(name, 1150))
		v := 1150.0
		if i == 0 {
			v = 1300
		}
		outlierBench = append(outlierBench, bm(name, v))
	}

	failures, notes, _ := compare(mkSummary(nil, baseBench...), mkSummary(nil, driftBench...), 10, 5)
	if len(failures) != 0 {
		t.Fatalf("uniform 15%% suite drift must normalize out: %v", failures)
	}
	if joined := strings.Join(notes, "\n"); !strings.Contains(joined, "suite drift +15.0%") {
		t.Errorf("drift note missing:\n%s", joined)
	}

	failures, _, _ = compare(mkSummary(nil, baseBench...), mkSummary(nil, outlierBench...), 10, 5)
	if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkA regressed 13.0% vs suite") {
		t.Fatalf("outlier against the drifted suite not caught: %v", failures)
	}
}

// TestCompareWorstFloor pins the noise-model gate: a multi-invocation
// baseline records how slow a benchmark's floor gets as machine state
// re-rolls, and regressions measure against THAT — while improvement
// hints still measure against the best floor.
func TestCompareWorstFloor(t *testing.T) {
	noisy := bench{Name: "BenchmarkNoisy", NsPerOpMin: 100, NsPerOpFloorWorst: 125}
	base := mkSummary(nil, noisy)

	// 30% over the best floor but only 4% over the worst observed one:
	// within the machine's demonstrated spread, not a regression.
	failures, _, _ := compare(base, mkSummary(nil, bm("BenchmarkNoisy", 130)), 10, 5)
	if len(failures) != 0 {
		t.Fatalf("fresh floor inside the baseline's observed spread must pass: %v", failures)
	}
	// 12% over even the worst floor: regressed.
	failures, _, _ = compare(base, mkSummary(nil, bm("BenchmarkNoisy", 140)), 10, 5)
	if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkNoisy regressed 12.0%") {
		t.Fatalf("regression past the worst floor not caught: %v", failures)
	}
	// Improvements still reference the best floor.
	_, notes, _ := compare(base, mkSummary(nil, bm("BenchmarkNoisy", 85)), 10, 5)
	if joined := strings.Join(notes, "\n"); !strings.Contains(joined, "BenchmarkNoisy improved 15.0%") {
		t.Errorf("improvement vs best floor not noted:\n%s", joined)
	}
}

// TestMergeMinRetry pins the two-phase flow: a focused rerun that hits
// a lower floor clears the suspect, its names came out of compare, and
// overheads take the smaller measured side.
func TestMergeMinRetry(t *testing.T) {
	base := mkSummary(pctPtr(3.0), bm("BenchmarkA", 100), bm("BenchmarkB", 500))
	fresh := mkSummary(pctPtr(4.0), bm("BenchmarkA", 130), bm("BenchmarkB", 505))
	failures, _, regressed := compare(base, fresh, 10, 5)
	if len(failures) != 1 || len(regressed) != 1 || regressed[0] != "BenchmarkA" {
		t.Fatalf("expected BenchmarkA as the retry candidate: failures=%v regressed=%v", failures, regressed)
	}

	// The retry reaches the real floor: merged, the gate clears.
	retry := mkSummary(pctPtr(3.5), bm("BenchmarkA", 102))
	merged := mergeMin(fresh, retry)
	if failures, _, _ := compare(base, merged, 10, 5); len(failures) != 0 {
		t.Fatalf("retry at the floor must clear the gate: %v", failures)
	}
	if got := *merged.PhaseUCBOverheadPct; got != 3.5 {
		t.Errorf("merged overhead = %v, want the smaller side 3.5", got)
	}
	if n := len(merged.Benchmarks); n != 2 {
		t.Errorf("merge changed the benchmark set: %d entries", n)
	}

	// A real regression's floor reproduces and still fails.
	stillSlow := mergeMin(fresh, mkSummary(nil, bm("BenchmarkA", 128)))
	if failures, _, _ := compare(base, stillSlow, 10, 5); len(failures) != 1 {
		t.Fatalf("reproduced regression must still fail: %v", failures)
	}
}

func TestCompareNotesOnly(t *testing.T) {
	base := mkSummary(nil, bm("BenchmarkA", 100), bm("BenchmarkGone", 50))
	fresh := summary{
		GoVersion: "go1.25.0", GOOS: "linux", GOARCH: "arm64",
		Benchmarks: []bench{bm("BenchmarkA", 50), bm("BenchmarkNew", 70)},
	}
	failures, notes, _ := compare(base, fresh, 10, 5)
	if len(failures) != 0 {
		t.Fatalf("additions/removals/improvements must not fail the gate: %v", failures)
	}
	joined := strings.Join(notes, "\n")
	for _, want := range []string{"environment drift", "BenchmarkNew", "BenchmarkGone vanished", "BenchmarkA improved 50.0%"} {
		if !strings.Contains(joined, want) {
			t.Errorf("notes missing %q:\n%s", want, joined)
		}
	}
}

// abm builds a benchmark entry with an allocation profile.
func abm(name string, min float64, allocs uint64, bytes float64) bench {
	return bench{Name: name, NsPerOpMin: min, AllocsPerOp: allocs, BytesPerOp: bytes}
}

func TestCompareAllocsRegression(t *testing.T) {
	base := mkSummary(nil, abm("BenchmarkA", 100, 800, 100_000))
	fresh := mkSummary(nil, abm("BenchmarkA", 100, 40_000, 2_000_000))
	failures, _ := compareAllocs(base, fresh, 10, nil)
	if len(failures) != 2 {
		t.Fatalf("alloc+bytes blowup must fail twice, got %v", failures)
	}
	if !strings.Contains(failures[0], "allocs/op grew") || !strings.Contains(failures[1], "bytes/op grew") {
		t.Fatalf("unexpected failure text: %v", failures)
	}
	// Within the gate passes; a large improvement is a note, not a failure.
	failures, notes := compareAllocs(base, mkSummary(nil, abm("BenchmarkA", 100, 850, 104_000)), 10, nil)
	if len(failures) != 0 {
		t.Fatalf("in-gate alloc jitter must pass: %v", failures)
	}
	_, notes = compareAllocs(base, mkSummary(nil, abm("BenchmarkA", 100, 80, 10_000)), 10, nil)
	if len(notes) != 1 || !strings.Contains(notes[0], "allocs/op dropped") {
		t.Fatalf("10x alloc improvement should suggest a baseline refresh: %v", notes)
	}
	_ = notes
}

func TestCompareAllocsExplicitBudget(t *testing.T) {
	// The explicit budget binds even when the committed baseline is worse:
	// a poisoned baseline cannot grandfather garbage back in.
	base := mkSummary(nil, abm("BenchmarkHot", 100, 50_000, 2_000_000))
	fresh := mkSummary(nil, abm("BenchmarkHot", 100, 50_000, 2_000_000))
	failures, _ := compareAllocs(base, fresh, 10, map[string]uint64{"BenchmarkHot": 2_500})
	if len(failures) != 1 || !strings.Contains(failures[0], "over its explicit budget") {
		t.Fatalf("budget must bind regardless of baseline: %v", failures)
	}
	// A budget naming a vanished benchmark fails rather than silently passing.
	failures, _ = compareAllocs(base, mkSummary(nil, abm("BenchmarkOther", 1, 1, 1)), 10,
		map[string]uint64{"BenchmarkHot": 2_500})
	found := false
	for _, f := range failures {
		if strings.Contains(f, "missing from the fresh run") {
			found = true
		}
	}
	if !found {
		t.Fatalf("budgeted benchmark vanished without failure: %v", failures)
	}
}

func TestParseAllocBudgets(t *testing.T) {
	budgets, err := parseAllocBudgets("BenchmarkA=100, BenchmarkB=2500")
	if err != nil || budgets["BenchmarkA"] != 100 || budgets["BenchmarkB"] != 2500 {
		t.Fatalf("parse failed: %v %v", budgets, err)
	}
	if _, err := parseAllocBudgets("BenchmarkA"); err == nil {
		t.Fatal("malformed entry must be rejected")
	}
	if budgets, err := parseAllocBudgets(""); err != nil || len(budgets) != 0 {
		t.Fatal("empty spec must parse to no budgets")
	}
}
