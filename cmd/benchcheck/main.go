// Command benchcheck gates the repository's performance trajectory: it
// diffs a freshly generated benchmark summary (the benchjson format)
// against the committed baseline BENCH_core.json and fails on
//
//   - any benchmark whose fresh ns/op floor (min over the -count runs)
//     is more than -max-regress-pct above the WORST floor the baseline's
//     invocations ever observed (ns_per_op_floor_worst — see benchjson),
//     after suite-drift normalization — see below — or
//   - any *_overhead_pct metric above -overhead-budget-pct — the
//     steering-policy dispatch, phase+UCB plumbing, and grid dispatch
//     overheads are features sold as "nearly free", so their cost is
//     budgeted, not just tracked — or
//   - an overhead metric present in the baseline but missing fresh (a
//     silently deleted guard is a failure, not a pass) — or
//   - any benchmark whose fresh allocs_per_op or bytes_per_op exceeds
//     the baseline by more than -max-alloc-regress-pct. Allocation
//     counts are deterministic (no machine-state drift, no retry): a
//     jump means garbage crept back into a measured loop — exactly the
//     regression the zero-steady-state-alloc core is guarded against —
//     or
//   - any benchmark named in -alloc-budgets whose fresh allocs_per_op
//     exceeds its explicit ceiling, independent of the committed
//     baseline (so an accidental baseline refresh cannot ratchet the
//     hot-loop benchmarks' allocation budget upward silently).
//
// Suite-drift normalization: raw ns/op does not compare across machine
// states — a busy host, a different CPU, or frequency scaling shifts the
// whole suite together by far more than any gate tolerates. A real
// regression is one benchmark moving against the rest. So when enough
// benchmarks exist on both sides, each fresh/baseline ratio is divided
// by the suite's median ratio before the gate applies: uniform drift
// cancels exactly (and is reported as a note), while a single benchmark
// 10% slower than its peers still fails. The *_overhead_pct metrics are
// already machine-independent ratios and are compared unnormalized.
//
// Benchmarks that exist on only one side are reported but do not fail
// the gate: additions are normal growth and removals are visible in
// review.
//
// Even after drift normalization, individual benchmarks on shared CI
// hosts show invocation-level noise (CPU migration, layout effects)
// that one sweep cannot average away. The gate is therefore two-phase:
// -write-regressed emits the names of benchmarks that tripped the ns/op
// gate so the caller can rerun JUST those with more repetitions, and
// -retry folds that focused rerun back in, gating on the per-benchmark
// minimum across both (more samples only sharpen a floor — a real
// regression's floor is genuinely higher and reproduces).
// scripts/bench_check.sh drives the loop; `make bench-check` wires it up.
//
// Usage:
//
//	benchcheck -baseline BENCH_core.json -fresh fresh.json [-retry retry.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// summary mirrors the benchjson output fields the gate reads.
type summary struct {
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	Benchmarks []bench `json:"benchmarks"`

	PolicyOverheadPct       *float64 `json:"policy_overhead_pct"`
	PhaseUCBOverheadPct     *float64 `json:"phase_ucb_overhead_pct"`
	GridDispatchOverheadPct *float64 `json:"grid_dispatch_overhead_pct"`
}

type bench struct {
	Name       string  `json:"name"`
	NsPerOpMin float64 `json:"ns_per_op_min"`
	// NsPerOpFloorWorst (from a multi-invocation baseline) is the
	// slowest per-invocation floor — how slow this benchmark's best case
	// gets as machine state re-rolls. The gate compares a fresh floor
	// against it, so a benchmark is only "regressed" when it is slower
	// than the baseline has EVER seen it, by more than the gate. Falls
	// back to NsPerOpMin when absent.
	NsPerOpFloorWorst float64 `json:"ns_per_op_floor_worst"`
	BytesPerOp        float64 `json:"bytes_per_op"`
	AllocsPerOp       uint64  `json:"allocs_per_op"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_core.json", "committed baseline summary")
	freshPath := flag.String("fresh", "", "freshly generated summary to gate (required)")
	retryPath := flag.String("retry", "", "optional second summary from a focused rerun; the per-benchmark minimum of the two is gated")
	maxRegress := flag.Float64("max-regress-pct", 10, "max tolerated ns/op regression per benchmark")
	budget := flag.Float64("overhead-budget-pct", 5, "budget for every *_overhead_pct metric")
	maxAllocRegress := flag.Float64("max-alloc-regress-pct", 10, "max tolerated allocs/op or bytes/op growth per benchmark (deterministic: never retried)")
	allocBudgets := flag.String("alloc-budgets", "", "explicit allocs/op ceilings, comma-separated Name=N pairs, gated regardless of baseline")
	writeRegressed := flag.String("write-regressed", "", "write the names of benchmarks failing the ns/op gate to this file (one per line) for a focused retry")
	flag.Parse()
	if *freshPath == "" {
		fatal(fmt.Errorf("benchcheck: -fresh is required"))
	}

	base, err := load(*baselinePath)
	if err != nil {
		fatal(err)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fatal(err)
	}
	// The drift factor is estimated from the UNMERGED phase-1 sweep: a
	// focused retry sharpens a few benchmarks' floors, which says nothing
	// about the host — folding it into the median would shift every
	// other benchmark's verdict between phases.
	drift, driftNote := suiteDrift(base, fresh)
	if *retryPath != "" {
		retry, err := load(*retryPath)
		if err != nil {
			fatal(err)
		}
		fresh = mergeMin(fresh, retry)
	}

	budgets, err := parseAllocBudgets(*allocBudgets)
	if err != nil {
		fatal(err)
	}
	failures, notes, regressed := compareAt(base, fresh, drift, driftNote, *maxRegress, *budget)
	allocFailures, allocNotes := compareAllocs(base, fresh, *maxAllocRegress, budgets)
	failures = append(failures, allocFailures...)
	notes = append(notes, allocNotes...)
	if *writeRegressed != "" {
		var buf []byte
		for _, n := range regressed {
			buf = append(buf, n...)
			buf = append(buf, '\n')
		}
		if err := os.WriteFile(*writeRegressed, buf, 0o644); err != nil {
			fatal(err)
		}
	}
	for _, n := range notes {
		fmt.Fprintln(os.Stderr, "benchcheck:", n)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchcheck: FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchcheck: OK — %d benchmarks within %.0f%%, overheads within %.0f%%\n",
		len(fresh.Benchmarks), *maxRegress, *budget)
}

// mergeMin folds a focused-rerun summary into the full sweep: per
// benchmark the smaller ns/op min wins (more repetitions of a noisy
// benchmark only sharpen its floor), and each overhead metric takes the
// smaller of the sides that measured it.
func mergeMin(a, b summary) summary {
	a.Benchmarks = append([]bench(nil), a.Benchmarks...)
	idx := map[string]int{}
	for i, bm := range a.Benchmarks {
		idx[bm.Name] = i
	}
	for _, bm := range b.Benchmarks {
		if i, ok := idx[bm.Name]; ok {
			if bm.NsPerOpMin < a.Benchmarks[i].NsPerOpMin {
				a.Benchmarks[i].NsPerOpMin = bm.NsPerOpMin
			}
		} else {
			a.Benchmarks = append(a.Benchmarks, bm)
		}
	}
	a.PolicyOverheadPct = minPtr(a.PolicyOverheadPct, b.PolicyOverheadPct)
	a.PhaseUCBOverheadPct = minPtr(a.PhaseUCBOverheadPct, b.PhaseUCBOverheadPct)
	a.GridDispatchOverheadPct = minPtr(a.GridDispatchOverheadPct, b.GridDispatchOverheadPct)
	return a
}

func minPtr(a, b *float64) *float64 {
	switch {
	case a == nil:
		return b
	case b == nil || *a <= *b:
		return a
	default:
		return b
	}
}

// compare produces the gate verdict: hard failures, informational
// notes, and the names of benchmarks that failed the ns/op gate (the
// candidates for a focused retry — overhead-budget failures are not
// retryable and are excluded). It is pure so the policy is testable
// without files.
func compare(base, fresh summary, maxRegress, budget float64) (failures, notes, regressed []string) {
	drift, driftNote := suiteDrift(base, fresh)
	return compareAt(base, fresh, drift, driftNote, maxRegress, budget)
}

// suiteDrift estimates host-state drift as the median fresh/baseline
// ratio over benchmarks both sides know. With too few shared benchmarks
// the median IS the candidate regression, so normalization only kicks
// in past a floor. The note is empty when the drift is negligible.
func suiteDrift(base, fresh summary) (float64, string) {
	known := map[string]float64{}
	for _, b := range base.Benchmarks {
		known[b.Name] = b.NsPerOpMin
	}
	var ratios []float64
	for _, b := range fresh.Benchmarks {
		if baseMin := known[b.Name]; baseMin > 0 && b.NsPerOpMin > 0 {
			ratios = append(ratios, b.NsPerOpMin/baseMin)
		}
	}
	if len(ratios) < minSuiteForDrift {
		return 1, ""
	}
	drift := median(ratios)
	note := ""
	if pct := 100 * (drift - 1); pct > 1 || pct < -1 {
		note = fmt.Sprintf(
			"suite drift %+.1f%% (median over %d shared benchmarks) — normalized out as machine state, not regression",
			pct, len(ratios))
	}
	return drift, note
}

// compareAt is compare with the drift factor pinned by the caller (the
// two-phase flow estimates it once, from the full phase-1 sweep).
func compareAt(base, fresh summary, drift float64, driftNote string, maxRegress, budget float64) (failures, notes, regressed []string) {
	if base.GoVersion != fresh.GoVersion || base.GOOS != fresh.GOOS || base.GOARCH != fresh.GOARCH {
		notes = append(notes, fmt.Sprintf(
			"environment drift: baseline %s %s/%s vs fresh %s %s/%s (timings compare across it)",
			base.GoVersion, base.GOOS, base.GOARCH, fresh.GoVersion, fresh.GOOS, fresh.GOARCH))
	}
	if driftNote != "" {
		notes = append(notes, driftNote)
	}

	known := map[string]bench{}
	for _, b := range base.Benchmarks {
		known[b.Name] = b
	}

	seen := map[string]bool{}
	for _, b := range fresh.Benchmarks {
		seen[b.Name] = true
		bb, ok := known[b.Name]
		if !ok {
			notes = append(notes, fmt.Sprintf("new benchmark %s (no baseline; will gate once committed)", b.Name))
			continue
		}
		// Regressions measure against the worst floor the baseline's
		// invocations observed; improvements against its best, so a
		// genuine speedup is suggested for a baseline refresh even on a
		// benchmark with a wide floor spread.
		baseWorst := bb.NsPerOpFloorWorst
		if baseWorst <= 0 {
			baseWorst = bb.NsPerOpMin
		}
		if bb.NsPerOpMin <= 0 || baseWorst <= 0 {
			continue
		}
		pct := 100 * (b.NsPerOpMin - baseWorst*drift) / (baseWorst * drift)
		if pct > maxRegress {
			failures = append(failures, fmt.Sprintf("%s regressed %.1f%% vs suite (%.4g → %.4g ns/op, gate %.0f%%)",
				b.Name, pct, baseWorst, b.NsPerOpMin, maxRegress))
			regressed = append(regressed, b.Name)
		} else if gain := 100 * (b.NsPerOpMin - bb.NsPerOpMin*drift) / (bb.NsPerOpMin * drift); gain < -maxRegress {
			notes = append(notes, fmt.Sprintf("%s improved %.1f%% vs suite (%.4g → %.4g ns/op) — consider refreshing the baseline",
				b.Name, -gain, bb.NsPerOpMin, b.NsPerOpMin))
		}
	}
	for _, b := range base.Benchmarks {
		if !seen[b.Name] {
			notes = append(notes, fmt.Sprintf("benchmark %s vanished from the fresh run", b.Name))
		}
	}

	overheads := []struct {
		name        string
		base, fresh *float64
	}{
		{"policy_overhead_pct", base.PolicyOverheadPct, fresh.PolicyOverheadPct},
		{"phase_ucb_overhead_pct", base.PhaseUCBOverheadPct, fresh.PhaseUCBOverheadPct},
		{"grid_dispatch_overhead_pct", base.GridDispatchOverheadPct, fresh.GridDispatchOverheadPct},
	}
	for _, o := range overheads {
		switch {
		case o.fresh == nil && o.base != nil:
			failures = append(failures, fmt.Sprintf("%s missing from the fresh run (baseline has %.2f%%)", o.name, *o.base))
		case o.fresh != nil && *o.fresh > budget:
			failures = append(failures, fmt.Sprintf("%s = %.2f%% over its %.0f%% budget", o.name, *o.fresh, budget))
		}
	}
	return failures, notes, regressed
}

// parseAllocBudgets decodes "Name=N,Name=N" into explicit ceilings.
func parseAllocBudgets(spec string) (map[string]uint64, error) {
	budgets := map[string]uint64{}
	if spec == "" {
		return budgets, nil
	}
	for _, pair := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("benchcheck: malformed -alloc-budgets entry %q (want Name=N)", pair)
		}
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchcheck: -alloc-budgets %s: %w", name, err)
		}
		budgets[name] = n
	}
	return budgets, nil
}

// compareAllocs gates the allocation profile. Allocation counts are
// deterministic — no drift normalization, no retry phase: a fresh count
// above the baseline by more than the gate is a real change in what the
// code allocates. Explicit budgets bind even when the committed baseline
// itself is worse (a poisoned baseline must not grandfather garbage in),
// and a budget naming a benchmark absent from the fresh run fails, so
// deleting a gated benchmark is loud. Alloc deltas beyond the gate in
// the improving direction surface as notes: a big drop is worth folding
// into the committed baseline.
func compareAllocs(base, fresh summary, maxRegressPct float64, budgets map[string]uint64) (failures, notes []string) {
	known := map[string]bench{}
	for _, b := range base.Benchmarks {
		known[b.Name] = b
	}
	seen := map[string]bool{}
	for _, b := range fresh.Benchmarks {
		seen[b.Name] = true
		if budget, ok := budgets[b.Name]; ok && b.AllocsPerOp > budget {
			failures = append(failures, fmt.Sprintf("%s allocates %d allocs/op, over its explicit budget of %d",
				b.Name, b.AllocsPerOp, budget))
		}
		bb, ok := known[b.Name]
		if !ok {
			continue
		}
		if bb.AllocsPerOp > 0 {
			pct := 100 * (float64(b.AllocsPerOp) - float64(bb.AllocsPerOp)) / float64(bb.AllocsPerOp)
			if pct > maxRegressPct {
				failures = append(failures, fmt.Sprintf("%s allocs/op grew %.1f%% (%d → %d, gate %.0f%%)",
					b.Name, pct, bb.AllocsPerOp, b.AllocsPerOp, maxRegressPct))
			} else if pct < -maxRegressPct {
				notes = append(notes, fmt.Sprintf("%s allocs/op dropped %.1f%% (%d → %d) — consider refreshing the baseline",
					b.Name, -pct, bb.AllocsPerOp, b.AllocsPerOp))
			}
		}
		if bb.BytesPerOp > 0 {
			pct := 100 * (b.BytesPerOp - bb.BytesPerOp) / bb.BytesPerOp
			if pct > maxRegressPct {
				failures = append(failures, fmt.Sprintf("%s bytes/op grew %.1f%% (%.4g → %.4g, gate %.0f%%)",
					b.Name, pct, bb.BytesPerOp, b.BytesPerOp, maxRegressPct))
			}
		}
	}
	for name := range budgets {
		if !seen[name] {
			failures = append(failures, fmt.Sprintf("%s has an explicit alloc budget but is missing from the fresh run", name))
		}
	}
	sort.Strings(failures)
	return failures, notes
}

// minSuiteForDrift is the smallest shared-benchmark count that makes the
// median ratio a drift estimate rather than the regression itself: with
// a handful of benchmarks, one genuinely slow result drags the median
// and would normalize itself away.
const minSuiteForDrift = 8

// median returns the middle value (mean of the two middles for even
// counts). The input is reordered.
func median(vs []float64) float64 {
	sort.Float64s(vs)
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

func load(path string) (summary, error) {
	var s summary
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("benchcheck: decoding %s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return s, fmt.Errorf("benchcheck: %s holds no benchmarks", path)
	}
	return s, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
