// Command sweep runs configuration ablations (width predictor table size,
// helper clock ratio, copy latency, issue-queue sizing, helper datapath
// width, IR split variants, the confidence estimator) and the full SPEC
// Int 2000 policy-ladder sweep, all through the public batch Runner: every
// study is a list of Jobs fanned out by Runner.RunBatch with streamed
// progress, and Ctrl-C cancels mid-sweep.
//
// Usage:
//
//	sweep -study widthtable -workload gcc
//	sweep -study clockratio -n 150000
//	sweep -study ladder -workers 8
//
// Any study can run sharded over worker processes on the simulation grid:
//
//	sweep -study ladder -grid :0             # in-process server + spawned workers
//	sweep -study ladder -grid host:8321      # an external `helperd serve` cluster
//	sweep -study ladder -grid a:8321,b:8321  # a federation: jobs partition by
//	                                         # affinity, submits fail over to peers
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/grid"
	"repro/internal/profiling"
	"repro/internal/report"
)

func main() {
	var (
		study        = flag.String("study", "clockratio", "widthtable|clockratio|copylat|iqsize|confidence|helperwidth|splitmode|ladder|dynamic|ucb")
		workloadName = flag.String("workload", "crafty", "SPEC Int 2000 benchmark (ablation studies)")
		policyName   = flag.String("policy", "cr", "policy for the configuration ablations (see helpersim -list)")
		n            = flag.Uint64("n", 120_000, "measured uops per point")
		workers      = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		gridAddr     = flag.String("grid", "", "run the study on a simulation grid: a job-server address, a comma-separated list of federation members, or an address ending in :0 to spawn an in-process server plus -grid-workers worker processes")
		gridWorkers  = flag.Int("grid-workers", 2, "worker processes to spawn for -grid addresses ending in :0")
		gridClient   = flag.String("grid-client", "", "tenant identity (X-Grid-Client) grid submissions use; \"\" is the anonymous tenant")
		gridWorkFor  = flag.String("as-grid-worker", "", "internal: run as a grid worker for the given server URL")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile of the study to this file")
		memProfile   = flag.String("memprofile", "", "write an allocs-inclusive heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Worker mode: `-grid :0` re-execs this binary as the worker shards.
	if *gridWorkFor != "" {
		w := &grid.Worker{Server: *gridWorkFor, Parallel: *workers,
			ExecProgress: repro.NewRunner().JobExecProgress(0)}
		if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
			fatal(err)
		}
		return
	}

	// Both progress callbacks rewrite the same stderr status line; on a
	// grid run they fire from different goroutines (batch completions vs
	// the result-stream reader), so the line is guarded by one mutex.
	var lineMu sync.Mutex
	opts := []repro.Option{
		repro.WithWorkers(*workers),
		repro.WithProgress(func(p repro.Progress) {
			lineMu.Lock()
			fmt.Fprintf(os.Stderr, "\r%d/%d %-60s", p.Done, p.Total, p.Job.Label())
			if p.Done == p.Total {
				fmt.Fprintln(os.Stderr)
			}
			lineMu.Unlock()
		}),
	}
	if *gridAddr != "" {
		addr, cleanup, err := setupGrid(ctx, *gridAddr, *gridWorkers, *workers)
		if err != nil {
			fatal(err)
		}
		// fatal exits without unwinding; make sure spawned worker
		// processes and the in-process server die with us either way.
		cleanupOnFatal = cleanup
		defer cleanup()
		// The live interval feed: between completions, show how far the
		// most recently heard-from point has gotten and what the steering
		// engine is doing there.
		if *gridClient != "" {
			opts = append(opts, repro.WithGridClientID(*gridClient))
		}
		opts = append(opts,
			repro.WithGrid(addr),
			repro.WithGridProgress(func(p repro.JobProgress) {
				pct := 0.0
				if p.Total > 0 {
					pct = 100 * float64(p.Uops) / float64(p.Total)
				}
				// The server's per-batch ETA rides on every progress event;
				// surface it so a long ladder shows when the batch lands.
				eta := ""
				if p.BatchETA > 0 {
					eta = fmt.Sprintf(" eta=%s", p.BatchETA.Round(time.Second))
				}
				lineMu.Lock()
				fmt.Fprintf(os.Stderr, "\r%-60s", fmt.Sprintf("%s %4.1f%% ipc=%.2f rung=%s%s",
					p.Job.Label(), pct, p.IntervalIPC, p.Rung, eta))
				lineMu.Unlock()
			}))
	}
	runner := repro.NewRunner(opts...)
	if *gridAddr != "" {
		defer reportGrid(runner)
	}

	if *study == "ladder" {
		runLadder(ctx, runner, *n)
		return
	}
	if *study == "dynamic" {
		runDynamic(ctx, runner, *n)
		return
	}
	if *study == "ucb" {
		runUCB(ctx, runner, *n)
		return
	}

	w, err := repro.WorkloadByName(*workloadName)
	if err != nil {
		fatal(err)
	}
	pol, err := repro.PolicyByName(*policyName)
	if err != nil {
		fatal(err)
	}
	warm := *n / 5

	// Every ablation is a labeled list of machine/policy points simulated
	// alongside one shared monolithic baseline (job index 0).
	type point struct {
		label  string
		config repro.Config
		policy repro.Policy
	}
	var (
		title  string
		points []point
	)
	vary := func(label string, mut func(*repro.Config)) point {
		cfg := repro.HelperConfig()
		mut(&cfg)
		return point{label: label, config: cfg, policy: pol}
	}
	switch *study {
	case "widthtable":
		// §3.2: "a size of 256 entries was found to be a good compromise".
		title = fmt.Sprintf("Width predictor table size — %s", w.Name)
		for _, entries := range []int{64, 128, 256, 512, 1024, 4096} {
			points = append(points, vary(fmt.Sprintf("%d entries", entries),
				func(c *repro.Config) { c.WidthEntries = entries }))
		}
	case "clockratio":
		// §2.2: the 8-bit backend can be clocked 2× faster.
		title = fmt.Sprintf("Helper clock ratio — %s", w.Name)
		for _, ratio := range []int{1, 2, 3} {
			points = append(points, vary(fmt.Sprintf("%dx", ratio),
				func(c *repro.Config) { c.HelperClockRatio = ratio }))
		}
	case "copylat":
		title = fmt.Sprintf("Inter-cluster copy latency — %s", w.Name)
		for _, lat := range []int{1, 2, 4, 8} {
			points = append(points, vary(fmt.Sprintf("%d cycles", lat),
				func(c *repro.Config) { c.CopyLatency = lat }))
		}
	case "iqsize":
		// §2.2 claims reduced issue queue size/width has negligible impact.
		title = fmt.Sprintf("Issue queue sizing — %s", w.Name)
		for _, size := range []int{8, 16, 32, 64} {
			points = append(points, vary(fmt.Sprintf("%d entries", size),
				func(c *repro.Config) { c.WideIQ, c.HelperIQ = size, size }))
		}
	case "helperwidth":
		// §2.1: a wider-than-8-bit helper captures more instructions.
		title = fmt.Sprintf("Helper datapath width — %s", w.Name)
		for _, bits := range []int{8, 16, 24} {
			points = append(points, vary(fmt.Sprintf("%d-bit", bits),
				func(c *repro.Config) { c.HelperWidthBits = bits }))
		}
	case "splitmode":
		// §3.7: per-uop splitting vs the tuned no-destination variant vs
		// the proposed block-granularity extension.
		title = fmt.Sprintf("IR splitting variants — %s", w.Name)
		for _, name := range []string{"ir", "irnd", "irblk"} {
			p := mustPolicy(name)
			points = append(points, point{label: p.Name(), config: repro.HelperConfig(), policy: p})
		}
	case "confidence":
		// §3.2: the 2-bit estimator cut fatal mispredictions 2.11%→0.83%.
		title = fmt.Sprintf("Confidence estimator — %s", w.Name)
		points = append(points,
			point{label: "with confidence", config: repro.HelperConfig(), policy: mustPolicy("888")},
			point{label: "without", config: repro.HelperConfig(), policy: mustPolicy("no-confidence")})
	default:
		fmt.Fprintf(os.Stderr, "unknown study %q\n", *study)
		os.Exit(1)
	}

	jobs := []repro.Job{{
		Name:   "baseline",
		Config: repro.BaselineConfig(), Policy: repro.PolicyBaseline(),
		Workload: w, N: *n, Warmup: warm,
	}}
	for _, p := range points {
		jobs = append(jobs, repro.Job{
			Name:   p.label,
			Config: p.config, Policy: p.policy,
			Workload: w, N: *n, Warmup: warm,
		})
	}
	results := collect(ctx, runner, jobs)

	base := results[0]
	t := report.NewTable(title, "speedup%", "copies%", "fatal")
	for i, p := range points {
		r := results[i+1]
		t.AddRow(p.label, 100*repro.SpeedupOf(r, base), 100*r.Metrics.CopyFrac(),
			float64(r.Metrics.FatalFlushes))
	}
	fmt.Println(t.Render())
}

// runLadder sweeps the paper's full cumulative policy ladder over all 12
// SPEC Int 2000 workloads in one RunBatch: 12 × (1 baseline + 7 rungs)
// jobs streamed off the worker pool.
func runLadder(ctx context.Context, runner *repro.Runner, n uint64) {
	apps := repro.SpecInt2000()
	ladder := repro.PolicyLadder()
	warm := n / 5

	var jobs []repro.Job
	for _, w := range apps {
		jobs = append(jobs, repro.Job{
			Config: repro.BaselineConfig(), Policy: repro.PolicyBaseline(),
			Workload: w, N: n, Warmup: warm,
		})
		for _, pol := range ladder {
			jobs = append(jobs, repro.Job{Policy: pol, Workload: w, N: n, Warmup: warm})
		}
	}
	results := collect(ctx, runner, jobs)

	cols := make([]string, len(ladder))
	for i, pol := range ladder {
		name := pol.Name()
		if cut := strings.LastIndex(name, "+"); i > 0 && cut >= 0 {
			name = name[cut:]
		}
		cols[i] = name
	}
	t := report.NewTable(fmt.Sprintf("SPEC Int 2000 policy ladder — speedup %% over baseline (%d uops)", n),
		cols...)
	stride := 1 + len(ladder)
	for ai, w := range apps {
		base := results[ai*stride]
		row := make([]float64, len(ladder))
		for pi := range ladder {
			row[pi] = 100 * repro.SpeedupOf(results[ai*stride+1+pi], base)
		}
		t.AddRow(w.Name, row...)
	}
	t.AddMeanRow()
	fmt.Println(t.Render())
}

// runDynamic compares the static ladder against the dynamic selectors on
// all 12 SPEC workloads: per app, the best static rung (a per-app oracle)
// vs the tournament and occupancy-adaptive policies, with the
// tournament's per-rung usage breakdown. One shared dynamic Policy value
// fans out safely — every simulation adapts from a private clone.
//
// internal/experiments runs the same study (FigDynamic/DynamicUsage)
// against the internal core; this version deliberately goes through the
// public Job/Runner surface, like every sweep study, so the two exercise
// different layers rather than sharing code.
func runDynamic(ctx context.Context, runner *repro.Runner, n uint64) {
	apps := repro.SpecInt2000()
	ladder := repro.PolicyLadder()
	tournament := repro.PolicyDynamic()
	occupancy := repro.PolicyAdaptive()
	warm := n / 5

	var jobs []repro.Job
	for _, w := range apps {
		jobs = append(jobs, repro.Job{
			Config: repro.BaselineConfig(), Policy: repro.PolicyBaseline(),
			Workload: w, N: n, Warmup: warm,
		})
		for _, pol := range ladder {
			jobs = append(jobs, repro.Job{Policy: pol, Workload: w, N: n, Warmup: warm})
		}
		jobs = append(jobs,
			repro.Job{Policy: tournament, Workload: w, N: n, Warmup: warm},
			repro.Job{Policy: occupancy, Workload: w, N: n, Warmup: warm})
	}
	results := collect(ctx, runner, jobs)

	t := report.NewTable(
		fmt.Sprintf("SPEC Int 2000 dynamic policy selection — speedup %% over baseline (%d uops)", n),
		"best-static", "tournament", "occupancy", "tour-minus-best")
	stride := 1 + len(ladder) + 2
	type appUsage struct {
		app   string
		rungs []repro.RungUsage
		total uint64
	}
	var usages []appUsage
	for ai, w := range apps {
		base := results[ai*stride]
		best := 0.0
		for pi := range ladder {
			if spd := 100 * repro.SpeedupOf(results[ai*stride+1+pi], base); pi == 0 || spd > best {
				best = spd
			}
		}
		tr := results[ai*stride+1+len(ladder)]
		oc := results[ai*stride+2+len(ladder)]
		tour := 100 * repro.SpeedupOf(tr, base)
		occ := 100 * repro.SpeedupOf(oc, base)
		t.AddRow(w.Name, best, tour, occ, tour-best)
		usages = append(usages, appUsage{app: w.Name, rungs: tr.Rungs, total: tr.Metrics.Committed})
	}
	t.AddMeanRow()
	fmt.Println(t.Render())

	fmt.Println("tournament rung usage (% of committed uops governed by each rung):")
	for _, u := range usages {
		fmt.Printf("  %-8s", u.app)
		for _, r := range u.rungs {
			share := 0.0
			if u.total > 0 {
				share = 100 * float64(r.Committed) / float64(u.total)
			}
			fmt.Printf("  %s %5.1f%%", r.Rung, share)
		}
		fmt.Println()
	}
}

// runUCB compares the two dynamic selection strategies against the static
// ladder on both axes the paper cares about: raw IPC speedup and the §3.7
// energy-delay² efficiency. Per app it runs baseline, every ladder rung,
// the tournament, and both UCB reward modes, then reports the best static
// rung on each axis (the per-app oracles) next to the selectors — the
// ED²-rewarded UCB optimizes that metric directly from the per-interval
// energy estimates the simulator feeds adaptive policies.
func runUCB(ctx context.Context, runner *repro.Runner, n uint64) {
	apps := repro.SpecInt2000()
	ladder := repro.PolicyLadder()
	dynamics := []repro.Policy{repro.PolicyDynamic(), repro.PolicyUCB(), repro.PolicyUCBED2()}
	warm := n / 5

	var jobs []repro.Job
	for _, w := range apps {
		jobs = append(jobs, repro.Job{
			Config: repro.BaselineConfig(), Policy: repro.PolicyBaseline(),
			Workload: w, N: n, Warmup: warm,
		})
		for _, pol := range ladder {
			jobs = append(jobs, repro.Job{Policy: pol, Workload: w, N: n, Warmup: warm})
		}
		for _, pol := range dynamics {
			jobs = append(jobs, repro.Job{Policy: pol, Workload: w, N: n, Warmup: warm})
		}
	}
	results := collect(ctx, runner, jobs)

	ipcT := report.NewTable(
		fmt.Sprintf("UCB vs tournament vs static ladder — speedup %% over baseline (%d uops)", n),
		"best-static", "tournament", "ucb-ipc", "ucb-ed2")
	ed2T := report.NewTable(
		fmt.Sprintf("UCB vs tournament vs static ladder — ED² gain %% over baseline (%d uops)", n),
		"best-static", "tournament", "ucb-ipc", "ucb-ed2")
	stride := 1 + len(ladder) + len(dynamics)
	baseCfg := repro.BaselineConfig()
	for ai, w := range apps {
		base := results[ai*stride]
		basePower := repro.EstimatePower(baseCfg, base)
		ed2Gain := func(r repro.Result, cfg repro.Config) float64 {
			return 100 * repro.ED2Gain(repro.EstimatePower(cfg, r), basePower)
		}
		bestIPC, bestED2 := 0.0, 0.0
		for pi := range ladder {
			r := results[ai*stride+1+pi]
			cfg := jobs[ai*stride+1+pi].EffectiveConfig()
			if spd := 100 * repro.SpeedupOf(r, base); pi == 0 || spd > bestIPC {
				bestIPC = spd
			}
			if g := ed2Gain(r, cfg); pi == 0 || g > bestED2 {
				bestED2 = g
			}
		}
		ipcRow := []float64{bestIPC}
		ed2Row := []float64{bestED2}
		for di := range dynamics {
			idx := ai*stride + 1 + len(ladder) + di
			r := results[idx]
			cfg := jobs[idx].EffectiveConfig()
			ipcRow = append(ipcRow, 100*repro.SpeedupOf(r, base))
			ed2Row = append(ed2Row, ed2Gain(r, cfg))
		}
		ipcT.AddRow(w.Name, ipcRow...)
		ed2T.AddRow(w.Name, ed2Row...)
	}
	ipcT.AddMeanRow()
	ed2T.AddMeanRow()
	fmt.Println(ipcT.Render())
	fmt.Println(ed2T.Render())
}

// setupGrid resolves the -grid flag: an address ending in :0 spawns an
// in-process job server on an ephemeral port plus nworkers copies of
// this binary as worker processes (the shard-over-processes mode), each
// inheriting the -workers parallelism bound; any other address is used
// as an external `helperd serve` cluster.
func setupGrid(ctx context.Context, addr string, nworkers, parallel int) (string, func(), error) {
	if !strings.HasSuffix(addr, ":0") {
		return addr, func() {}, nil
	}
	host := strings.TrimSuffix(addr, ":0")
	if host == "" {
		host = "127.0.0.1"
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		return "", nil, fmt.Errorf("sweep: grid listen: %w", err)
	}
	// A snappy lease TTL: workers heartbeat (and publish interval
	// progress) at TTL/3, and an in-process loopback grid can afford
	// tight beats — with the default 5s, short jobs would finish before
	// the live progress line ever updated.
	srv := grid.NewServer(grid.WithLeaseTTL(time.Second))
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	url := "http://" + ln.Addr().String()

	self, err := os.Executable()
	if err != nil {
		hs.Close()
		srv.Close()
		return "", nil, fmt.Errorf("sweep: cannot re-exec for grid workers: %w", err)
	}
	if nworkers < 1 {
		nworkers = 1
	}
	// Split the parallelism budget across the spawned processes: N workers
	// each running the full -workers (or GOMAXPROCS) count would
	// oversubscribe the host N-fold.
	if parallel < 1 {
		parallel = runtime.GOMAXPROCS(0)
	}
	perWorker := (parallel + nworkers - 1) / nworkers
	var procs []*exec.Cmd
	for i := 0; i < nworkers; i++ {
		cmd := exec.CommandContext(ctx, self, "-as-grid-worker", url, "-workers", fmt.Sprint(perWorker))
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			for _, p := range procs {
				p.Process.Kill()
			}
			hs.Close()
			srv.Close()
			return "", nil, fmt.Errorf("sweep: spawning grid worker: %w", err)
		}
		procs = append(procs, cmd)
	}
	fmt.Fprintf(os.Stderr, "sweep: grid server %s, %d worker processes\n", url, nworkers)
	cleanup := func() {
		for _, p := range procs {
			p.Process.Kill()
			p.Wait()
		}
		hs.Close()
		srv.Close()
	}
	return url, cleanup, nil
}

// reportGrid prints the grid's cache and lease counters after a study,
// so reruns show their cache hits and kill-a-worker runs their
// reassignments. On a federation the counters are summed across members
// and a second line reports the federation's own machinery: steals,
// affinity placement, and speculative re-leases.
func reportGrid(runner *repro.Runner) {
	m, err := runner.GridMetrics(context.Background())
	if err != nil {
		return
	}
	fmt.Fprintf(os.Stderr, "sweep: grid: %d cache hits, %d misses, %d coalesced, %d reassigned, %d workers\n",
		m.CacheHits, m.CacheMisses, m.Coalesced, m.Reassigned, m.Workers)
	if m.Peers > 0 || m.StealsOut > 0 || m.StealsIn > 0 || m.AffinityHits > 0 || m.AffinityMisses > 0 {
		fmt.Fprintf(os.Stderr, "sweep: federation: %d peers, %d steals out, %d in, affinity %d/%d, %d speculated\n",
			m.Peers, m.StealsOut, m.StealsIn, m.AffinityHits, m.AffinityHits+m.AffinityMisses, m.Speculated)
	}
}

// collect gathers a batch in job order, exiting with a clean message on
// failure or Ctrl-C. Any failed job exits non-zero with the job's
// canonical JSON on stderr, so the exact point can be re-run with
// `helperd submit`.
func collect(ctx context.Context, runner *repro.Runner, jobs []repro.Job) []repro.Result {
	results, err := runner.RunAll(ctx, jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr)
		var jerr *repro.JobError
		if errors.As(err, &jerr) {
			if data, merr := json.Marshal(jerr.Job); merr == nil {
				fmt.Fprintf(os.Stderr, "sweep: failed job %d (canonical JSON): %s\n", jerr.Index, data)
			}
		}
		fatal(fmt.Errorf("sweep: %w", err))
	}
	return results
}

func mustPolicy(name string) repro.Policy {
	p, err := repro.PolicyByName(name)
	if err != nil {
		fatal(err)
	}
	return p
}

// cleanupOnFatal tears down the in-process grid (worker processes,
// server) when fatal bypasses main's defers.
var cleanupOnFatal func()

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	if cleanupOnFatal != nil {
		cleanupOnFatal()
	}
	os.Exit(1)
}
