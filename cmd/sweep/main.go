// Command sweep runs the ablation studies DESIGN.md calls out: width
// predictor table size, helper clock ratio, copy latency, issue-queue
// sizing (§2.2's robustness claim), and the confidence estimator.
//
// Usage:
//
//	sweep -study widthtable -workload gcc
//	sweep -study clockratio -n 150000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/report"
	"repro/internal/steer"
)

func main() {
	var (
		study        = flag.String("study", "clockratio", "widthtable|clockratio|copylat|iqsize|confidence|helperwidth|splitmode")
		workloadName = flag.String("workload", "crafty", "SPEC Int 2000 benchmark")
		n            = flag.Uint64("n", 120_000, "measured uops per point")
	)
	flag.Parse()

	w, err := repro.WorkloadByName(*workloadName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	warm := *n / 5
	base := repro.RunWarm(repro.BaselineConfig(), repro.PolicyBaseline(), w, *n, warm)

	run := func(cfg repro.Config, pol repro.Policy) (speedup, copies, fatal float64) {
		r := repro.RunWarm(cfg, pol, w, *n, warm)
		return 100 * repro.SpeedupOf(r, base), 100 * r.Metrics.CopyFrac(), float64(r.Metrics.FatalFlushes)
	}

	var t *report.Table
	switch *study {
	case "widthtable":
		// §3.2: "a size of 256 entries was found to be a good compromise".
		t = report.NewTable(fmt.Sprintf("Width predictor table size — %s", w.Name),
			"speedup%", "copies%", "fatal")
		for _, entries := range []int{64, 128, 256, 512, 1024, 4096} {
			cfg := repro.HelperConfig()
			cfg.WidthEntries = entries
			s, c, f := run(cfg, steer.FCR())
			t.AddRow(fmt.Sprintf("%d entries", entries), s, c, f)
		}
	case "clockratio":
		// §2.2: the 8-bit backend can be clocked 2× faster.
		t = report.NewTable(fmt.Sprintf("Helper clock ratio — %s", w.Name),
			"speedup%", "copies%", "fatal")
		for _, ratio := range []int{1, 2, 3} {
			cfg := repro.HelperConfig()
			cfg.HelperClockRatio = ratio
			s, c, f := run(cfg, steer.FCR())
			t.AddRow(fmt.Sprintf("%dx", ratio), s, c, f)
		}
	case "copylat":
		t = report.NewTable(fmt.Sprintf("Inter-cluster copy latency — %s", w.Name),
			"speedup%", "copies%", "fatal")
		for _, lat := range []int{1, 2, 4, 8} {
			cfg := repro.HelperConfig()
			cfg.CopyLatency = lat
			s, c, f := run(cfg, steer.FCR())
			t.AddRow(fmt.Sprintf("%d cycles", lat), s, c, f)
		}
	case "iqsize":
		// §2.2 claims reduced issue queue size/width has negligible impact.
		t = report.NewTable(fmt.Sprintf("Issue queue sizing — %s", w.Name),
			"speedup%", "copies%", "fatal")
		for _, size := range []int{8, 16, 32, 64} {
			cfg := repro.HelperConfig()
			cfg.WideIQ, cfg.HelperIQ = size, size
			s, c, f := run(cfg, steer.FCR())
			t.AddRow(fmt.Sprintf("%d entries", size), s, c, f)
		}
	case "helperwidth":
		// §2.1: a wider-than-8-bit helper captures more instructions.
		t = report.NewTable(fmt.Sprintf("Helper datapath width — %s", w.Name),
			"speedup%", "copies%", "fatal")
		for _, bits := range []int{8, 16, 24} {
			cfg := repro.HelperConfig()
			cfg.HelperWidthBits = bits
			s, c, f := run(cfg, steer.FCR())
			t.AddRow(fmt.Sprintf("%d-bit", bits), s, c, f)
		}
	case "splitmode":
		// §3.7: per-uop splitting vs the tuned no-destination variant vs
		// the proposed block-granularity extension.
		t = report.NewTable(fmt.Sprintf("IR splitting variants — %s", w.Name),
			"speedup%", "copies%", "fatal")
		for _, pol := range []repro.Policy{steer.FIR(), steer.FIRTuned(), steer.FIRBlock()} {
			s, c, f := run(repro.HelperConfig(), pol)
			t.AddRow(pol.Name(), s, c, f)
		}
	case "confidence":
		// §3.2: the 2-bit estimator cut fatal mispredictions 2.11%→0.83%.
		t = report.NewTable(fmt.Sprintf("Confidence estimator — %s", w.Name),
			"speedup%", "copies%", "fatal")
		s, c, f := run(repro.HelperConfig(), steer.F888())
		t.AddRow("with confidence", s, c, f)
		s, c, f = run(repro.HelperConfig(), steer.F888NoConfidence())
		t.AddRow("without", s, c, f)
	default:
		fmt.Fprintf(os.Stderr, "unknown study %q\n", *study)
		os.Exit(1)
	}
	fmt.Println(t.Render())
}
