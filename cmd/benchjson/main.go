// Command benchjson turns `go test -bench` output into a machine-readable
// JSON summary, seeding the repository's performance trajectory
// (BENCH_core.json via `make bench-json`). It reads the benchmark text
// from stdin, aggregates repeated -count runs per benchmark (min / mean /
// max ns/op, allocations), and — when BenchmarkPolicyOverhead is present
// — lifts its overhead-pct metric (the Policy-interface dispatch cost,
// measured over drift-cancelling interleaved slices) as the minimum over
// the repeated runs: scheduler interference only ever inflates an
// overhead ratio, so the smallest observation is the sharpest estimate
// of the intrinsic cost (the same reason ns_per_op_min is the value
// `benchcheck` compares).
//
// The input may concatenate SEVERAL `go test` invocations (each starts
// with a "goos:" header). Besides the global aggregates, benchjson then
// records ns_per_op_floor_worst — the slowest of the per-invocation
// minimums. On shared hardware a benchmark's floor re-rolls with each
// process launch (CPU placement, layout); a baseline built from three
// invocations captures that spread, and `benchcheck` gates fresh floors
// against it instead of against one lucky draw.
//
// Usage:
//
//	go test -run '^$' -bench=. -benchmem -count=3 . | benchjson -o BENCH_core.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// benchLine matches one result line, e.g.
// "BenchmarkFig03Detectors-8   123456   9.87 ns/op   16 B/op   2 allocs/op".
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

// overheadMetric matches BenchmarkPolicyOverhead's custom metric: the
// dispatch-vs-static cost of the steering Policy interface, measured over
// interleaved slices of one run so machine drift cancels. The leading
// space keeps it from matching the longer phase-ucb-overhead-pct metric.
var overheadMetric = regexp.MustCompile(`([0-9.eE+-]+) overhead-pct`)

// phaseOverheadMetric matches BenchmarkPhaseUCBOverhead's metric: the
// cost of the full phase-aware dynamic plumbing (per-uop dispatch, phase
// detection, interval energy estimation, UCB arm updates) over the static
// fast path, measured with the same interleaved-slices scheme.
var phaseOverheadMetric = regexp.MustCompile(`([0-9.eE+-]+) phase-ucb-overhead-pct`)

// gridOverheadMetric matches BenchmarkGridDispatchOverhead's metric: the
// cost of dispatching one job through the distributed grid (HTTP, lease
// protocol, canonical-JSON round trip) over running it in-process,
// measured with interleaved local/grid runs at job granularity.
var gridOverheadMetric = regexp.MustCompile(`([0-9.eE+-]+) grid-dispatch-overhead-pct`)

type sample struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp uint64
	iterations  uint64
	// invocation indexes which `go test` run of a concatenated input the
	// sample came from (the "goos:" header marks each new invocation).
	// Within one invocation the -count repetitions share a machine
	// state; across invocations the state re-rolls, which is exactly the
	// noise ns_per_op_floor_worst captures.
	invocation int
}

// Summary is the JSON document written for the perf trajectory.
type Summary struct {
	GeneratedAt string  `json:"generated_at"`
	GoVersion   string  `json:"go_version"`
	GOOS        string  `json:"goos"`
	GOARCH      string  `json:"goarch"`
	Benchmarks  []Bench `json:"benchmarks"`
	// PolicyOverheadPct is the interface-dispatch cost of the steering
	// Policy refactor in percent: the minimum of BenchmarkPolicyOverhead's
	// overhead-pct metric over the -count runs (noise only inflates the
	// ratio). Absent when that benchmark was not in the input.
	PolicyOverheadPct *float64 `json:"policy_overhead_pct,omitempty"`
	// PhaseUCBOverheadPct is the cost of the phase-aware dynamic path
	// (dispatch + phase detection + interval energy estimate + UCB arm
	// updates) over the static fast path: the minimum of
	// BenchmarkPhaseUCBOverhead's phase-ucb-overhead-pct metric. Absent
	// when that benchmark was not in the input.
	PhaseUCBOverheadPct *float64 `json:"phase_ucb_overhead_pct,omitempty"`
	// GridDispatchOverheadPct is the per-job cost of the distributed grid
	// fabric over in-process execution: the minimum of
	// BenchmarkGridDispatchOverhead's grid-dispatch-overhead-pct metric.
	// Absent when that benchmark was not in the input.
	GridDispatchOverheadPct *float64 `json:"grid_dispatch_overhead_pct,omitempty"`
}

// Bench aggregates the -count repetitions of one benchmark.
type Bench struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	NsPerOpMin  float64 `json:"ns_per_op_min"`
	NsPerOpMean float64 `json:"ns_per_op_mean"`
	NsPerOpMax  float64 `json:"ns_per_op_max"`
	// NsPerOpFloorWorst is the slowest per-invocation floor: each `go
	// test` invocation in the input yields its own min ns/op, and this
	// is the largest of those. A baseline built from several invocations
	// (make bench-json runs three) thereby records how much a
	// benchmark's floor moves with machine state — the honest reference
	// for a regression gate on shared hardware. Equals NsPerOpMin for
	// single-invocation input.
	NsPerOpFloorWorst float64 `json:"ns_per_op_floor_worst,omitempty"`
	BytesPerOp        float64 `json:"bytes_per_op"`
	AllocsPerOp       uint64  `json:"allocs_per_op"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	byName := map[string][]sample{}
	var overheads, phaseOverheads, gridOverheads []float64
	invocation := 0
	sawBench := false
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "goos:") {
			// A new `go test` invocation begins (concatenated input);
			// only count it once benchmarks actually separate the headers.
			if sawBench {
				invocation++
				sawBench = false
			}
			continue
		}
		if gm := gridOverheadMetric.FindStringSubmatch(sc.Text()); gm != nil {
			if v, err := strconv.ParseFloat(gm[1], 64); err == nil {
				gridOverheads = append(gridOverheads, v)
			}
		} else if pm := phaseOverheadMetric.FindStringSubmatch(sc.Text()); pm != nil {
			if v, err := strconv.ParseFloat(pm[1], 64); err == nil {
				phaseOverheads = append(phaseOverheads, v)
			}
		} else if om := overheadMetric.FindStringSubmatch(sc.Text()); om != nil {
			if v, err := strconv.ParseFloat(om[1], 64); err == nil {
				overheads = append(overheads, v)
			}
		}
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		var s sample
		s.iterations, _ = strconv.ParseUint(m[2], 10, 64)
		s.nsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			s.bytesPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			s.allocsPerOp, _ = strconv.ParseUint(m[5], 10, 64)
		}
		s.invocation = invocation
		sawBench = true
		byName[m[1]] = append(byName[m[1]], s)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(byName) == 0 {
		fatal(fmt.Errorf("benchjson: no benchmark lines on stdin (pipe `go test -bench` output in)"))
	}

	sum := Summary{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		runs := byName[n]
		b := Bench{Name: n, Runs: len(runs), NsPerOpMin: runs[0].nsPerOp, NsPerOpMax: runs[0].nsPerOp}
		var total, totalBytes float64
		var totalAllocs uint64
		for _, s := range runs {
			total += s.nsPerOp
			totalBytes += s.bytesPerOp
			totalAllocs += s.allocsPerOp
			if s.nsPerOp < b.NsPerOpMin {
				b.NsPerOpMin = s.nsPerOp
			}
			if s.nsPerOp > b.NsPerOpMax {
				b.NsPerOpMax = s.nsPerOp
			}
		}
		b.NsPerOpMean = total / float64(len(runs))
		b.BytesPerOp = totalBytes / float64(len(runs))
		b.AllocsPerOp = totalAllocs / uint64(len(runs))
		floors := map[int]float64{}
		for _, s := range runs {
			if f, ok := floors[s.invocation]; !ok || s.nsPerOp < f {
				floors[s.invocation] = s.nsPerOp
			}
		}
		for _, f := range floors {
			if f > b.NsPerOpFloorWorst {
				b.NsPerOpFloorWorst = f
			}
		}
		sum.Benchmarks = append(sum.Benchmarks, b)
	}

	if pct, ok := min(overheads); ok {
		sum.PolicyOverheadPct = &pct
	}
	if pct, ok := min(phaseOverheads); ok {
		sum.PhaseUCBOverheadPct = &pct
	}
	if pct, ok := min(gridOverheads); ok {
		sum.GridDispatchOverheadPct = &pct
	}

	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s", len(sum.Benchmarks), *out)
	if sum.PolicyOverheadPct != nil {
		fmt.Fprintf(os.Stderr, " (policy dispatch overhead %+.2f%%)", *sum.PolicyOverheadPct)
	}
	if sum.PhaseUCBOverheadPct != nil {
		fmt.Fprintf(os.Stderr, " (phase+ucb overhead %+.2f%%)", *sum.PhaseUCBOverheadPct)
	}
	if sum.GridDispatchOverheadPct != nil {
		fmt.Fprintf(os.Stderr, " (grid dispatch overhead %+.2f%%)", *sum.GridDispatchOverheadPct)
	}
	fmt.Fprintln(os.Stderr)
}

// min picks the smallest sample; ok is false when the list is empty.
// For overhead ratios the minimum is the noise-robust aggregate: timer
// jitter and scheduler interference only push the ratio up, never down.
func min(vs []float64) (float64, bool) {
	if len(vs) == 0 {
		return 0, false
	}
	m := vs[0]
	for _, v := range vs[1:] {
		if v < m {
			m = v
		}
	}
	return m, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
