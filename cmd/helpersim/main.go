// Command helpersim runs one workload under one steering policy and prints
// the paper's headline metrics (IPC, helper occupancy, copy percentage,
// width-prediction accuracy, NREADY imbalance, optional power estimate).
//
// Usage:
//
//	helpersim -workload gcc -policy ir -n 200000
//	helpersim -workload bzip2 -policy 888 -baseline -power
//
// Ctrl-C cancels a run in flight. Policies are resolved through the
// repro.PolicyByName registry; -list prints every accepted name.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro"
	"repro/internal/profiling"
)

func main() {
	var (
		workloadName = flag.String("workload", "gcc", "SPEC Int 2000 benchmark name")
		policyName   = flag.String("policy", "ir", "steering policy name or alias (see -list)")
		n            = flag.Uint64("n", 200_000, "committed uops to measure")
		warmup       = flag.Uint64("warmup", 0, "warmup uops (default n/5)")
		compare      = flag.Bool("baseline", true, "also run the monolithic baseline and report speedup")
		showPower    = flag.Bool("power", false, "print the Wattch-like energy estimate")
		list         = flag.Bool("list", false, "list policies, configs and workloads, then exit")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile   = flag.String("memprofile", "", "write an allocs-inclusive heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	if *list {
		fmt.Printf("policies:  %s\n", strings.Join(repro.PolicyNames(), ", "))
		fmt.Printf("configs:   %s\n", strings.Join(repro.ConfigNames(), ", "))
		fmt.Printf("workloads: %s\n", strings.Join(repro.WorkloadNames(), ", "))
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	w, err := repro.WorkloadByName(*workloadName)
	if err != nil {
		fatal(err)
	}
	pol, err := repro.PolicyByName(*policyName)
	if err != nil {
		fatal(err)
	}
	warm := *warmup
	if warm == 0 {
		warm = *n / 5
	}

	// Config left zero: the Runner derives it from the policy. The power
	// model below needs the resolved machine, hence EffectiveConfig.
	job := repro.Job{Policy: pol, Workload: w, N: *n, Warmup: warm}
	cfg := job.EffectiveConfig()
	runner := repro.NewRunner()
	res, err := runner.Run(ctx, job)
	if err != nil {
		fatal(err)
	}
	m := res.Metrics

	fmt.Printf("workload   %s\npolicy     %s\nuops       %d (+%d warmup)\n",
		w.Name, res.Policy, m.Committed, warm)
	fmt.Printf("IPC        %.3f  (%d wide cycles)\n", m.IPC(), m.WideCycles)
	fmt.Printf("helper     %.1f%%  copies %.1f%% (%.1f%% prefetched)  splits %d\n",
		100*m.HelperFrac(), 100*m.CopyFrac(),
		100*safeDiv(float64(m.CopyPrefetch), float64(m.CopiesCreated)), m.SteeredSplit)
	c, nf, f := m.WidthAccuracy()
	fmt.Printf("width pred %.1f%% correct, %.1f%% non-fatal, %.2f%% fatal (%d flushes)\n",
		100*c, 100*nf, 100*f, m.FatalFlushes)
	fmt.Printf("branches   %.1f%% mispredicted of %d\n", 100*m.BranchMispredictRate(), m.Branches)
	fmt.Printf("NREADY     wide→narrow %.2f  narrow→wide %.2f (per committed uop)\n",
		m.ImbalanceWideToNarrow(), m.ImbalanceNarrowToWide())
	fmt.Printf("caches     DL0 %.2f%% miss, UL1 %.2f%% miss, TC %.2f%% miss\n",
		100*res.L1.MissRate(), 100*res.L2.MissRate(), 100*res.TC.MissRate())

	if len(res.Rungs) > 0 {
		fmt.Printf("rungs      (adaptive policy usage)\n")
		for _, u := range res.Rungs {
			fmt.Printf("           %-28s %5.1f%% of uops, %d intervals, IPC %.3f\n",
				u.Rung, 100*safeDiv(float64(u.Committed), float64(m.Committed)), u.Intervals, u.IPC())
		}
	}

	if *compare && pol.NeedsHelper() {
		base, err := runner.Run(ctx, repro.Job{
			Config: repro.BaselineConfig(), Policy: repro.PolicyBaseline(),
			Workload: w, N: *n, Warmup: warm,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("speedup    %+.2f%% over the monolithic baseline (IPC %.3f)\n",
			100*repro.SpeedupOf(res, base), base.Metrics.IPC())
		if *showPower {
			pb := repro.EstimatePower(repro.BaselineConfig(), base)
			pr := repro.EstimatePower(cfg, res)
			fmt.Printf("energy     %.1f nJ vs baseline %.1f nJ; ED² gain %+.2f%%\n",
				pr.EnergyNJ, pb.EnergyNJ, 100*repro.ED2Gain(pr, pb))
		}
	} else if *showPower {
		pr := repro.EstimatePower(cfg, res)
		fmt.Printf("energy     %.1f nJ (ED² %.3g)\n", pr.EnergyNJ, pr.ED2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
